//! Write-ahead log with a bounded active window and crash simulation.
//!
//! The log provides the two properties DLFM leans on (paper §1, §3.3):
//! *persistence* (a forced record survives a crash) and *recoverability*
//! (replaying committed work reconstructs the database). It also models the
//! failure mode of §4: a long-running transaction pins the active log
//! window; once the window exceeds `capacity` further writes fail with
//! `LogFull`, which is why DLFM chunks utility transactions into periodic
//! local commits.
//!
//! Durability model: records are appended to a volatile tail; [`Wal::force`]
//! advances the durable watermark. A simulated crash discards everything
//! after the watermark. Checkpoints snapshot the storage so the log can be
//! replayed from the snapshot LSN instead of from the beginning.

use std::collections::HashMap;
use std::thread;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::error::{DbError, DbResult};
use crate::schema::{IndexSchema, TableSchema};
use crate::txn::TxnId;
use crate::value::Row;

/// Log sequence number.
pub type Lsn = u64;

/// Payload of one log record.
#[allow(missing_docs)] // payload fields are self-describing
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LogPayload {
    /// Transaction start.
    Begin,
    /// Row inserted.
    Insert { table: u32, rowid: u64, row: Row },
    /// Row deleted (old image kept for completeness/diagnostics).
    Delete { table: u32, rowid: u64, row: Row },
    /// Row updated in place.
    Update { table: u32, rowid: u64, old: Row, new: Row },
    /// DDL: table created.
    CreateTable { schema: TableSchema },
    /// DDL: index created.
    CreateIndex { schema: IndexSchema },
    /// DDL: table dropped (with its indexes).
    DropTable { table: u32 },
    /// Transaction committed (forced).
    Commit,
    /// Transaction rolled back.
    Abort,
}

/// One log record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogRecord {
    /// Sequence number, dense from 1.
    pub lsn: Lsn,
    /// Owning transaction.
    pub txn: u64,
    /// What happened.
    pub payload: LogPayload,
}

#[derive(Default)]
struct WalInner {
    records: Vec<LogRecord>,
    next_lsn: Lsn,
    durable_lsn: Lsn,
    /// First LSN written by each in-flight transaction.
    active_first_lsn: HashMap<u64, Lsn>,
}

impl WalInner {
    /// Size of the active window: records that cannot be reclaimed because
    /// an in-flight transaction might still need them.
    fn active_window(&self) -> usize {
        match self.active_first_lsn.values().min() {
            Some(&oldest) => (self.next_lsn.saturating_sub(oldest)) as usize,
            None => 0,
        }
    }
}

/// The write-ahead log.
pub struct Wal {
    // Duration of each force (simulated fsync), in microseconds.
    force_hist: obs::Histogram,
    inner: Mutex<WalInner>,
    capacity: Mutex<usize>,
    force_latency: Mutex<Duration>,
}

impl Wal {
    /// New empty log with the given active-window capacity (in records).
    pub fn new(capacity: usize, force_latency: Duration) -> Wal {
        Wal {
            inner: Mutex::new(WalInner { next_lsn: 1, ..WalInner::default() }),
            capacity: Mutex::new(capacity),
            force_latency: Mutex::new(force_latency),
            force_hist: obs::Histogram::new(),
        }
    }

    /// Change the active-window capacity at runtime (E8 sweeps this).
    pub fn set_capacity(&self, capacity: usize) {
        *self.capacity.lock() = capacity;
    }

    /// Change the per-force latency at runtime.
    pub fn set_force_latency(&self, d: Duration) {
        *self.force_latency.lock() = d;
    }

    /// Append a record for `txn`. Fails with `LogFull` when the active
    /// window would exceed capacity.
    pub fn append(&self, txn: TxnId, payload: LogPayload) -> DbResult<Lsn> {
        let mut inner = self.inner.lock();
        let capacity = *self.capacity.lock();
        let is_terminal = matches!(payload, LogPayload::Commit | LogPayload::Abort);
        if !is_terminal && inner.active_window() >= capacity {
            return Err(DbError::LogFull { pinned: inner.active_window(), capacity });
        }
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        inner.active_first_lsn.entry(txn.0).or_insert(lsn);
        inner.records.push(LogRecord { lsn, txn: txn.0, payload });
        if is_terminal {
            inner.active_first_lsn.remove(&txn.0);
        }
        Ok(lsn)
    }

    /// Make everything appended so far durable.
    pub fn force(&self) {
        let started = std::time::Instant::now();
        let _span = obs::span(obs::Layer::Minidb, "wal_force");
        let latency = *self.force_latency.lock();
        if latency > Duration::ZERO {
            thread::sleep(latency);
        }
        let mut inner = self.inner.lock();
        inner.durable_lsn = inner.next_lsn.saturating_sub(1);
        drop(inner);
        self.force_hist.record_micros(started.elapsed());
    }

    /// Histogram of force (simulated fsync) durations (microseconds).
    pub fn force_hist(&self) -> &obs::Histogram {
        &self.force_hist
    }

    /// Current size of the active (pinned) window, in records.
    pub fn active_window(&self) -> usize {
        self.inner.lock().active_window()
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> Lsn {
        self.inner.lock().durable_lsn
    }

    /// Highest appended LSN (durable or not).
    pub fn last_lsn(&self) -> Lsn {
        self.inner.lock().next_lsn.saturating_sub(1)
    }

    /// Total records currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Simulate a crash: discard the volatile tail (records past the durable
    /// watermark) and forget in-flight transaction tracking. Returns the
    /// number of records lost.
    pub fn crash(&self) -> usize {
        let mut inner = self.inner.lock();
        let durable = inner.durable_lsn;
        let before = inner.records.len();
        inner.records.retain(|r| r.lsn <= durable);
        let lost = before - inner.records.len();
        inner.next_lsn = durable + 1;
        inner.active_first_lsn.clear();
        lost
    }

    /// All retained records at or after `from_lsn`, in order.
    pub fn records_from(&self, from_lsn: Lsn) -> Vec<LogRecord> {
        self.inner.lock().records.iter().filter(|r| r.lsn >= from_lsn).cloned().collect()
    }

    /// Drop records strictly below `lsn` (after a checkpoint made them
    /// unnecessary for recovery).
    pub fn truncate_before(&self, lsn: Lsn) {
        self.inner.lock().records.retain(|r| r.lsn >= lsn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal(cap: usize) -> Wal {
        Wal::new(cap, Duration::ZERO)
    }

    #[test]
    fn lsns_are_dense_and_monotonic() {
        let w = wal(100);
        let a = w.append(TxnId(1), LogPayload::Begin).unwrap();
        let b = w.append(TxnId(1), LogPayload::Commit).unwrap();
        assert_eq!(b, a + 1);
        assert_eq!(w.last_lsn(), b);
    }

    #[test]
    fn log_full_when_one_txn_pins_window() {
        let w = wal(5);
        w.append(TxnId(7), LogPayload::Begin).unwrap();
        for i in 0..4 {
            w.append(TxnId(7), LogPayload::Insert { table: 1, rowid: i, row: vec![] }).unwrap();
        }
        let err = w
            .append(TxnId(7), LogPayload::Insert { table: 1, rowid: 99, row: vec![] })
            .unwrap_err();
        assert!(matches!(err, DbError::LogFull { .. }));
        // Commit is always allowed so the window can drain.
        w.append(TxnId(7), LogPayload::Commit).unwrap();
        assert_eq!(w.active_window(), 0);
        // And new transactions can write again.
        w.append(TxnId(8), LogPayload::Begin).unwrap();
    }

    #[test]
    fn chunked_commits_bound_the_window() {
        let w = wal(10);
        // 100 records in chunks of 5 never trip LogFull.
        for chunk in 0..20u64 {
            let t = TxnId(chunk + 1);
            w.append(t, LogPayload::Begin).unwrap();
            for i in 0..5 {
                w.append(t, LogPayload::Insert { table: 1, rowid: chunk * 5 + i, row: vec![] })
                    .unwrap();
            }
            w.append(t, LogPayload::Commit).unwrap();
        }
        assert_eq!(w.active_window(), 0);
    }

    #[test]
    fn crash_discards_unforced_tail() {
        let w = wal(100);
        w.append(TxnId(1), LogPayload::Begin).unwrap();
        w.append(TxnId(1), LogPayload::Commit).unwrap();
        w.force();
        w.append(TxnId(2), LogPayload::Begin).unwrap();
        w.append(TxnId(2), LogPayload::Insert { table: 1, rowid: 0, row: vec![] }).unwrap();
        let lost = w.crash();
        assert_eq!(lost, 2);
        assert_eq!(w.last_lsn(), 2);
        let recs = w.records_from(0);
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[1].payload, LogPayload::Commit));
    }

    #[test]
    fn truncate_before_keeps_tail() {
        let w = wal(100);
        for _ in 0..5 {
            let t = TxnId(1);
            w.append(t, LogPayload::Begin).unwrap();
            w.append(t, LogPayload::Commit).unwrap();
        }
        w.truncate_before(7);
        assert_eq!(w.records_from(0).len(), 4);
    }

    #[test]
    fn multiple_active_txns_pin_oldest() {
        let w = wal(100);
        w.append(TxnId(1), LogPayload::Begin).unwrap(); // lsn 1
        w.append(TxnId(2), LogPayload::Begin).unwrap(); // lsn 2
        w.append(TxnId(2), LogPayload::Commit).unwrap(); // lsn 3
                                                         // Window measured from txn1's first record.
        assert_eq!(w.active_window(), 3);
        w.append(TxnId(1), LogPayload::Commit).unwrap();
        assert_eq!(w.active_window(), 0);
    }
}
