//! Write-ahead log with a bounded active window, group commit, and crash
//! simulation.
//!
//! The log provides the two properties DLFM leans on (paper §1, §3.3):
//! *persistence* (a forced record survives a crash) and *recoverability*
//! (replaying committed work reconstructs the database). It also models the
//! failure mode of §4: a long-running transaction pins the active log
//! window; once the window exceeds `capacity` further writes fail with
//! `LogFull`, which is why DLFM chunks utility transactions into periodic
//! local commits.
//!
//! Durability model: records are appended to a volatile tail;
//! [`Wal::force_up_to`] advances the durable watermark. The simulated fsync
//! device (`force_latency`) handles **one force at a time**, like a real log
//! disk, so serial per-commit forces cost N × latency under N committers.
//!
//! Group commit closes that gap: a committer publishes its commit LSN and
//! blocks until `durable_lsn` covers it; one *leader* performs a single
//! force on behalf of every waiter that arrived meanwhile (classic
//! leader/follower, condvar-based). An optional `group_commit_wait` window
//! lets the leader linger before forcing to accumulate a bigger batch.
//!
//! A simulated crash discards everything after the watermark and wakes all
//! waiters, so no committer reports durability it never got. Because a
//! crash rewinds `next_lsn`, LSNs are *reused* afterwards — an LSN alone
//! cannot tell "my record became durable" from "a different record now
//! owns my LSN". [`Wal::append`] therefore returns an [`Appended`] receipt
//! carrying the crash epoch the record was born in (captured under the
//! same lock `crash()` bumps it under), and [`Wal::force_up_to`] decides
//! durability exactly from `(lsn, epoch)` plus the final watermark each
//! closed epoch is buried with. Checkpoints snapshot the storage so the
//! log can be replayed from the snapshot LSN instead of from the
//! beginning.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};

use crate::error::{DbError, DbResult};
use crate::schema::{IndexSchema, TableSchema};
use crate::txn::TxnId;
use crate::value::Row;

/// Log sequence number.
pub type Lsn = u64;

/// Payload of one log record.
#[allow(missing_docs)] // payload fields are self-describing
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LogPayload {
    /// Transaction start.
    Begin,
    /// Row inserted.
    Insert { table: u32, rowid: u64, row: Row },
    /// Row deleted (old image kept for completeness/diagnostics).
    Delete { table: u32, rowid: u64, row: Row },
    /// Row updated in place.
    Update { table: u32, rowid: u64, old: Row, new: Row },
    /// DDL: table created.
    CreateTable { schema: TableSchema },
    /// DDL: index created.
    CreateIndex { schema: IndexSchema },
    /// DDL: table dropped (with its indexes).
    DropTable { table: u32 },
    /// Transaction committed (forced).
    Commit,
    /// Transaction rolled back.
    Abort,
}

/// One log record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogRecord {
    /// Sequence number, dense from 1.
    pub lsn: Lsn,
    /// Owning transaction.
    pub txn: u64,
    /// What happened.
    pub payload: LogPayload,
}

/// Receipt for one appended record: its LSN plus the crash epoch the
/// append happened in. Both are needed to decide durability exactly:
/// after a crash truncates the tail, LSNs are reused, so the epoch is
/// what ties the receipt to *this* record rather than a later namesake.
#[derive(Debug, Clone, Copy)]
pub struct Appended {
    /// The record's log sequence number.
    pub lsn: Lsn,
    /// Crash epoch the record was appended in (captured under the log
    /// lock, so it can never be stale with respect to a racing crash).
    epoch: u64,
}

#[derive(Default)]
struct WalInner {
    records: Vec<LogRecord>,
    next_lsn: Lsn,
    durable_lsn: Lsn,
    /// First LSN written by each in-flight transaction.
    active_first_lsn: HashMap<u64, Lsn>,
    /// Final durable watermark of each closed (crashed) epoch — the exact
    /// survival test for records appended in that epoch.
    epoch_final: HashMap<u64, Lsn>,
}

impl WalInner {
    /// Size of the active window: records that cannot be reclaimed because
    /// an in-flight transaction might still need them.
    fn active_window(&self) -> usize {
        match self.active_first_lsn.values().min() {
            Some(&oldest) => (self.next_lsn.saturating_sub(oldest)) as usize,
            None => 0,
        }
    }
}

/// Group-commit coordination: at most one leader forces at a time;
/// followers park on the condvar until the durable watermark covers them.
#[derive(Default)]
struct GroupState {
    leader_active: bool,
}

/// The write-ahead log.
pub struct Wal {
    // Duration of each force (simulated fsync), in microseconds.
    force_hist: obs::Histogram,
    /// Commit records made durable per force (group-commit batch size).
    batch_hist: obs::Histogram,
    inner: Mutex<WalInner>,
    capacity: AtomicUsize,
    force_latency_nanos: AtomicU64,
    /// Mirror of `inner.durable_lsn` for lock-free waiter checks.
    durable: AtomicU64,
    /// Bumped on crash so blocked committers never report false durability.
    epoch: AtomicU64,
    group_commit: AtomicBool,
    group_wait_nanos: AtomicU64,
    forces: AtomicU64,
    commits: AtomicU64,
    /// The simulated fsync device: one force in flight at a time.
    device: Mutex<()>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
}

impl Wal {
    /// New empty log with the given active-window capacity (in records).
    /// Group commit starts enabled with a zero accumulation window.
    pub fn new(capacity: usize, force_latency: Duration) -> Wal {
        Wal {
            inner: Mutex::new(WalInner { next_lsn: 1, ..WalInner::default() }),
            capacity: AtomicUsize::new(capacity),
            force_latency_nanos: AtomicU64::new(force_latency.as_nanos() as u64),
            durable: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            group_commit: AtomicBool::new(true),
            group_wait_nanos: AtomicU64::new(0),
            forces: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            force_hist: obs::Histogram::new(),
            batch_hist: obs::Histogram::new(),
            device: Mutex::new(()),
            group: Mutex::new(GroupState::default()),
            group_cv: Condvar::new(),
        }
    }

    /// Change the active-window capacity at runtime (E8 sweeps this).
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
    }

    /// Change the per-force latency at runtime.
    pub fn set_force_latency(&self, d: Duration) {
        self.force_latency_nanos.store(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Toggle group commit at runtime (E11 compares both modes).
    pub fn set_group_commit(&self, on: bool) {
        self.group_commit.store(on, Ordering::Relaxed);
    }

    /// Is group commit enabled?
    pub fn group_commit(&self) -> bool {
        self.group_commit.load(Ordering::Relaxed)
    }

    /// Change the leader's batch-accumulation window at runtime.
    pub fn set_group_commit_wait(&self, d: Duration) {
        self.group_wait_nanos.store(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Append a record for `txn`. Fails with `LogFull` when the active
    /// window would exceed capacity.
    pub fn append(&self, txn: TxnId, payload: LogPayload) -> DbResult<Appended> {
        if obs::fault::fire("minidb.wal.append") {
            return Err(DbError::Internal("injected: wal append I/O error".into()));
        }
        let is_terminal = matches!(payload, LogPayload::Commit | LogPayload::Abort);
        if matches!(payload, LogPayload::Commit) {
            self.commits.fetch_add(1, Ordering::Relaxed);
        }
        let mut inner = self.inner.lock();
        let capacity = self.capacity.load(Ordering::Relaxed);
        if !is_terminal && inner.active_window() >= capacity {
            return Err(DbError::LogFull { pinned: inner.active_window(), capacity });
        }
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        inner.active_first_lsn.entry(txn.0).or_insert(lsn);
        inner.records.push(LogRecord { lsn, txn: txn.0, payload });
        if is_terminal {
            inner.active_first_lsn.remove(&txn.0);
        }
        // Epoch captured under the log lock — `crash()` bumps it under the
        // same lock, so the receipt can never carry a post-crash epoch for
        // a pre-crash record (or vice versa).
        Ok(Appended { lsn, epoch: self.epoch.load(Ordering::Acquire) })
    }

    /// Make everything appended so far durable. Returns `false` when a
    /// crash destroyed part of that tail first (see [`Wal::force_up_to`]).
    pub fn force(&self) -> bool {
        let tail = {
            let inner = self.inner.lock();
            Appended {
                lsn: inner.next_lsn.saturating_sub(1),
                epoch: self.epoch.load(Ordering::Acquire),
            }
        };
        self.force_up_to(tail)
    }

    /// Block until the record behind `rec` is durable. Returns `true` once
    /// that holds and `false` if a simulated crash destroyed the record
    /// first (the caller must NOT report durability). The decision is
    /// exact either way — see [`Wal::durable_status`].
    ///
    /// With group commit on this is the leader/follower protocol: the first
    /// committer to find no force in flight becomes leader, optionally
    /// lingers for `group_commit_wait`, then performs one force covering
    /// every record appended so far; followers park on a condvar. With
    /// group commit off every caller performs (and pays for) its own force,
    /// serialised at the device — the pre-group-commit behaviour.
    pub fn force_up_to(&self, rec: Appended) -> bool {
        if self.group_commit.load(Ordering::Relaxed) {
            self.force_grouped(rec)
        } else {
            self.force_serial(rec)
        }
    }

    /// Exact durability status of `rec`: `Some(true)` once the record is
    /// durable, `Some(false)` once a crash provably destroyed it, `None`
    /// while still undecided (append epoch current, watermark short).
    ///
    /// Exactness rests on two monotonicity facts. The durable watermark
    /// never rewinds (a crash truncates only records *past* it), and a
    /// record appended in epoch E has an LSN strictly above the watermark
    /// E started with (a crash rewinds `next_lsn` to `durable + 1`). So
    /// `durable >= rec.lsn` observed while the epoch still equals
    /// `rec.epoch` can only mean the record itself was covered; and once
    /// the epoch has moved on, the watermark E was closed with — recorded
    /// by `crash()` in `epoch_final` — is the precise survival test, no
    /// matter how far reused LSNs have regrown since.
    fn durable_status(&self, rec: Appended) -> Option<bool> {
        if self.durable.load(Ordering::Acquire) >= rec.lsn
            && self.epoch.load(Ordering::Acquire) == rec.epoch
        {
            return Some(true);
        }
        if self.epoch.load(Ordering::Acquire) == rec.epoch {
            return None;
        }
        let inner = self.inner.lock();
        Some(inner.epoch_final.get(&rec.epoch).is_some_and(|&d| d >= rec.lsn))
    }

    fn force_serial(&self, rec: Appended) -> bool {
        self.force_device(rec.epoch);
        // Decide on the watermark, not on our own force's outcome: another
        // committer's force may already have made `rec` durable (recovery
        // will redo it even though our force lost an epoch race), and our
        // own force succeeding implies it covered `rec`.
        self.durable_status(rec).unwrap_or(false)
    }

    fn force_grouped(&self, rec: Appended) -> bool {
        let mut group = self.group.lock();
        loop {
            if let Some(durable) = self.durable_status(rec) {
                return durable;
            }
            if group.leader_active {
                // Follower: the in-flight (or next) force will cover us.
                self.group_cv.wait(&mut group);
                continue;
            }
            group.leader_active = true;
            drop(group);
            let window = self.group_wait_nanos.load(Ordering::Relaxed);
            if window > 0 {
                thread::sleep(Duration::from_nanos(window));
            }
            // `durable_status` was undecided, so `rec.epoch` was current a
            // moment ago: this force either covers `rec` or loses an epoch
            // race to a crash — the loop re-check resolves either exactly.
            self.force_device(rec.epoch);
            group = self.group.lock();
            group.leader_active = false;
            self.group_cv.notify_all();
        }
    }

    /// One pass over the simulated fsync device: capture the force target,
    /// sleep the device latency, publish durability. Returns `false` if a
    /// crash (epoch bump) raced the force, in which case nothing is
    /// published.
    fn force_device(&self, epoch: u64) -> bool {
        let _span = obs::span(obs::Layer::Minidb, "wal_force");
        let started = std::time::Instant::now();
        let _device = self.device.lock();
        // Records appended while the fsync is in flight are NOT covered.
        let target = {
            let inner = self.inner.lock();
            inner.next_lsn.saturating_sub(1)
        };
        let latency = self.force_latency_nanos.load(Ordering::Relaxed);
        if latency > 0 {
            thread::sleep(Duration::from_nanos(latency));
        }
        let mut inner = self.inner.lock();
        if self.epoch.load(Ordering::Acquire) != epoch {
            return false;
        }
        // A crash cannot have truncated past `target` (epoch unchanged),
        // but clamp defensively so durability never outruns the records.
        let target = target.min(inner.next_lsn.saturating_sub(1));
        let covered = inner
            .records
            .iter()
            .rev()
            .take_while(|r| r.lsn > inner.durable_lsn)
            .filter(|r| r.lsn <= target && matches!(r.payload, LogPayload::Commit))
            .count();
        inner.durable_lsn = inner.durable_lsn.max(target);
        self.durable.store(inner.durable_lsn, Ordering::Release);
        let durable = inner.durable_lsn;
        drop(inner);
        self.forces.fetch_add(1, Ordering::Relaxed);
        self.batch_hist.record(covered as u64);
        self.force_hist.record_micros(started.elapsed());
        obs::journal::record(obs::journal::JournalKind::WalForce, 0, || {
            format!("wal force to lsn {durable} covering {covered} commits")
        });
        true
    }

    /// Histogram of force (simulated fsync) durations (microseconds).
    pub fn force_hist(&self) -> &obs::Histogram {
        &self.force_hist
    }

    /// Histogram of commit records made durable per force (batch size).
    pub fn batch_hist(&self) -> &obs::Histogram {
        &self.batch_hist
    }

    /// Total forces performed (one simulated fsync each).
    pub fn forces_total(&self) -> u64 {
        self.forces.load(Ordering::Relaxed)
    }

    /// Total commit records appended.
    pub fn commits_total(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Current size of the active (pinned) window, in records.
    pub fn active_window(&self) -> usize {
        self.inner.lock().active_window()
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> Lsn {
        self.durable.load(Ordering::Acquire)
    }

    /// Highest appended LSN (durable or not).
    pub fn last_lsn(&self) -> Lsn {
        self.inner.lock().next_lsn.saturating_sub(1)
    }

    /// Total records currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Simulate a crash: discard the volatile tail (records past the durable
    /// watermark) and forget in-flight transaction tracking. Returns the
    /// number of records lost. Blocked committers are woken and observe the
    /// epoch bump, so none of them reports a lost commit as durable.
    pub fn crash(&self) -> usize {
        let mut inner = self.inner.lock();
        let durable = inner.durable_lsn;
        let before = inner.records.len();
        inner.records.retain(|r| r.lsn <= durable);
        let lost = before - inner.records.len();
        inner.next_lsn = durable + 1;
        inner.active_first_lsn.clear();
        // Close the epoch under the log lock: record the watermark it ended
        // with (the exact survival test for its records), then bump. Held
        // lock means no `append` can capture a half-crashed epoch.
        let closed = self.epoch.fetch_add(1, Ordering::Release);
        inner.epoch_final.insert(closed, durable);
        drop(inner);
        self.group_cv.notify_all();
        lost
    }

    /// All retained records at or after `from_lsn`, in order.
    pub fn records_from(&self, from_lsn: Lsn) -> Vec<LogRecord> {
        self.inner.lock().records.iter().filter(|r| r.lsn >= from_lsn).cloned().collect()
    }

    /// Drop records strictly below `lsn` (after a checkpoint made them
    /// unnecessary for recovery).
    pub fn truncate_before(&self, lsn: Lsn) {
        self.inner.lock().records.retain(|r| r.lsn >= lsn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal(cap: usize) -> Wal {
        Wal::new(cap, Duration::ZERO)
    }

    #[test]
    fn lsns_are_dense_and_monotonic() {
        let w = wal(100);
        let a = w.append(TxnId(1), LogPayload::Begin).unwrap();
        let b = w.append(TxnId(1), LogPayload::Commit).unwrap();
        assert_eq!(b.lsn, a.lsn + 1);
        assert_eq!(w.last_lsn(), b.lsn);
    }

    #[test]
    fn log_full_when_one_txn_pins_window() {
        let w = wal(5);
        w.append(TxnId(7), LogPayload::Begin).unwrap();
        for i in 0..4 {
            w.append(TxnId(7), LogPayload::Insert { table: 1, rowid: i, row: vec![] }).unwrap();
        }
        let err = w
            .append(TxnId(7), LogPayload::Insert { table: 1, rowid: 99, row: vec![] })
            .unwrap_err();
        assert!(matches!(err, DbError::LogFull { .. }));
        // Commit is always allowed so the window can drain.
        w.append(TxnId(7), LogPayload::Commit).unwrap();
        assert_eq!(w.active_window(), 0);
        // And new transactions can write again.
        w.append(TxnId(8), LogPayload::Begin).unwrap();
    }

    #[test]
    fn chunked_commits_bound_the_window() {
        let w = wal(10);
        // 100 records in chunks of 5 never trip LogFull.
        for chunk in 0..20u64 {
            let t = TxnId(chunk + 1);
            w.append(t, LogPayload::Begin).unwrap();
            for i in 0..5 {
                w.append(t, LogPayload::Insert { table: 1, rowid: chunk * 5 + i, row: vec![] })
                    .unwrap();
            }
            w.append(t, LogPayload::Commit).unwrap();
        }
        assert_eq!(w.active_window(), 0);
    }

    #[test]
    fn crash_discards_unforced_tail() {
        let w = wal(100);
        w.append(TxnId(1), LogPayload::Begin).unwrap();
        w.append(TxnId(1), LogPayload::Commit).unwrap();
        assert!(w.force());
        w.append(TxnId(2), LogPayload::Begin).unwrap();
        w.append(TxnId(2), LogPayload::Insert { table: 1, rowid: 0, row: vec![] }).unwrap();
        let lost = w.crash();
        assert_eq!(lost, 2);
        assert_eq!(w.last_lsn(), 2);
        let recs = w.records_from(0);
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[1].payload, LogPayload::Commit));
    }

    #[test]
    fn truncate_before_keeps_tail() {
        let w = wal(100);
        for _ in 0..5 {
            let t = TxnId(1);
            w.append(t, LogPayload::Begin).unwrap();
            w.append(t, LogPayload::Commit).unwrap();
        }
        w.truncate_before(7);
        assert_eq!(w.records_from(0).len(), 4);
    }

    #[test]
    fn multiple_active_txns_pin_oldest() {
        let w = wal(100);
        w.append(TxnId(1), LogPayload::Begin).unwrap(); // lsn 1
        w.append(TxnId(2), LogPayload::Begin).unwrap(); // lsn 2
        w.append(TxnId(2), LogPayload::Commit).unwrap(); // lsn 3
                                                         // Window measured from txn1's first record.
        assert_eq!(w.active_window(), 3);
        w.append(TxnId(1), LogPayload::Commit).unwrap();
        assert_eq!(w.active_window(), 0);
    }

    #[test]
    fn force_up_to_advances_durability_and_counts() {
        let w = wal(100);
        w.append(TxnId(1), LogPayload::Begin).unwrap();
        let c1 = w.append(TxnId(1), LogPayload::Commit).unwrap();
        w.append(TxnId(2), LogPayload::Begin).unwrap();
        let c2 = w.append(TxnId(2), LogPayload::Commit).unwrap();
        // One force covers both commits (they were both appended already).
        assert!(w.force_up_to(c2));
        assert!(w.durable_lsn() >= c1.lsn);
        assert_eq!(w.forces_total(), 1);
        assert_eq!(w.commits_total(), 2);
        assert_eq!(w.batch_hist().count(), 1);
        assert_eq!(w.batch_hist().max(), 2);
        // Already durable: no new force.
        assert!(w.force_up_to(c1));
        assert_eq!(w.forces_total(), 1);
    }

    /// A crash landing between append and force must report the record as
    /// lost — promptly (no live-lock as a leader forcing forever) and
    /// permanently (reused LSNs regrowing past it must not be mistaken for
    /// the destroyed record).
    #[test]
    fn crash_between_append_and_force_reports_loss() {
        for grouped in [true, false] {
            let w = wal(100);
            w.set_group_commit(grouped);
            w.append(TxnId(1), LogPayload::Begin).unwrap();
            let rec = w.append(TxnId(1), LogPayload::Commit).unwrap();
            w.crash();
            // Regrow the log past the lost LSN and make it durable: the
            // reused LSNs now cover `rec.lsn` with different records.
            w.append(TxnId(2), LogPayload::Begin).unwrap();
            let other = w.append(TxnId(2), LogPayload::Commit).unwrap();
            w.append(TxnId(3), LogPayload::Begin).unwrap();
            assert!(w.force_up_to(other));
            assert!(w.durable_lsn() >= rec.lsn);
            assert!(!w.force_up_to(rec), "lost record acknowledged as durable");
        }
    }

    /// The mirror case: a record that *did* become durable before the crash
    /// must be acknowledged even when the asker's own force loses the epoch
    /// race — recovery redoes it, so reporting it aborted would be wrong.
    #[test]
    fn durable_record_acked_across_a_crash() {
        for grouped in [true, false] {
            let w = wal(100);
            w.set_group_commit(grouped);
            w.append(TxnId(1), LogPayload::Begin).unwrap();
            let rec = w.append(TxnId(1), LogPayload::Commit).unwrap();
            assert!(w.force()); // e.g. another committer's force covers it
            w.crash(); // epoch bump: rec's own force can no longer succeed
            assert!(w.force_up_to(rec), "durable record reported as lost");
        }
    }

    #[test]
    fn serial_mode_forces_every_call() {
        let w = wal(100);
        w.set_group_commit(false);
        for t in 1..=3u64 {
            w.append(TxnId(t), LogPayload::Begin).unwrap();
            let lsn = w.append(TxnId(t), LogPayload::Commit).unwrap();
            assert!(w.force_up_to(lsn));
        }
        assert_eq!(w.forces_total(), 3);
        assert_eq!(w.commits_total(), 3);
    }

    #[test]
    fn crash_wakes_waiters_without_false_durability() {
        use std::sync::Arc;
        let w = Arc::new(Wal::new(100, Duration::from_millis(50)));
        w.append(TxnId(1), LogPayload::Begin).unwrap();
        let lsn = w.append(TxnId(1), LogPayload::Commit).unwrap();
        let w2 = w.clone();
        let committer = thread::spawn(move || w2.force_up_to(lsn));
        // Let the leader get into its simulated fsync, then crash.
        thread::sleep(Duration::from_millis(10));
        w.crash();
        // The committer must NOT report durability for a lost record.
        assert!(!committer.join().unwrap());
        assert_eq!(w.durable_lsn(), 0);
        assert!(w.records_from(0).is_empty());
    }
}
