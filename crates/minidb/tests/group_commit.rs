//! Group-commit durability tests.
//!
//! The contract under test: `commit()` may not return `Ok` before the
//! transaction's commit LSN is durable, no matter how many committers
//! share a force or when a crash lands — and one leader force must cover
//! many concurrent committers (forces counter < commits counter).

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use minidb::{Database, DbConfig, Session, Value};

fn db_with(force_latency: Duration, group_commit: bool) -> Database {
    let config =
        DbConfig { log_force_latency: force_latency, group_commit, ..DbConfig::for_tests() };
    let db = Database::new(config);
    Session::new(&db).exec("CREATE TABLE t (id BIGINT NOT NULL)").unwrap();
    db
}

/// Concurrent committers race a crash: every transaction whose `commit()`
/// returned `Ok` must be present after restart. The force latency is long
/// enough that the crash almost always lands mid-force, with committers
/// parked on the group condvar.
#[test]
fn crash_never_loses_an_acknowledged_commit() {
    const THREADS: usize = 8;
    let db = db_with(Duration::from_millis(2), true);
    let acked: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(THREADS + 1));

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let db = db.clone();
        let acked = acked.clone();
        let stop = stop.clone();
        let start = start.clone();
        handles.push(std::thread::spawn(move || {
            let mut s = Session::new(&db);
            let mut i = 0i64;
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let id = (t as i64) * 1_000_000 + i;
                i += 1;
                if s.begin().is_err() {
                    break;
                }
                if s.exec_params("INSERT INTO t (id) VALUES (?)", &[Value::Int(id)]).is_err() {
                    s.rollback();
                    break;
                }
                if s.commit().is_err() {
                    break;
                }
                // Only recorded once commit() acknowledged durability.
                acked.lock().unwrap().push(id);
            }
        }));
    }
    start.wait();
    std::thread::sleep(Duration::from_millis(60));
    db.crash();
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    db.restart().unwrap();
    let mut s = Session::new(&db);
    let survivors: HashSet<i64> = s
        .query("SELECT id FROM t", &[])
        .unwrap()
        .iter()
        .map(|r| match r[0] {
            Value::Int(v) => v,
            ref other => panic!("unexpected value {other:?}"),
        })
        .collect();
    let acked = acked.lock().unwrap();
    assert!(!acked.is_empty(), "no commit was acknowledged before the crash");
    for id in acked.iter() {
        assert!(
            survivors.contains(id),
            "transaction {id} was acknowledged as committed but lost in the crash \
             ({} acked, {} survived)",
            acked.len(),
            survivors.len()
        );
    }
}

/// One leader force covers many waiters: with a slow device and many
/// concurrent committers, the forces counter stays strictly below the
/// commits counter, and nothing is lost.
#[test]
fn one_force_covers_multiple_waiters() {
    const THREADS: usize = 8;
    const COMMITS_EACH: usize = 5;
    let db = db_with(Duration::from_millis(5), true);
    let start = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let db = db.clone();
        let start = start.clone();
        handles.push(std::thread::spawn(move || {
            let mut s = Session::new(&db);
            start.wait();
            for i in 0..COMMITS_EACH {
                let id = (t * COMMITS_EACH + i) as i64;
                s.begin().unwrap();
                s.exec_params("INSERT INTO t (id) VALUES (?)", &[Value::Int(id)]).unwrap();
                s.commit().unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let commits = db.wal_commits_total();
    let forces = db.wal_forces_total();
    assert!(commits >= (THREADS * COMMITS_EACH) as u64);
    assert!(
        forces < commits,
        "group commit must batch: forces ({forces}) not below commits ({commits})"
    );
    // Batch sizes are recorded per force and account for every commit.
    assert_eq!(db.wal_force_batch_hist().count(), forces);
    assert_eq!(db.wal_force_batch_hist().sum(), commits);
    let n = Session::new(&db).query_int("SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(n as usize, THREADS * COMMITS_EACH);
}

/// With group commit off, every committer pays its own force: the two
/// counters track each other exactly (DDL commits force too).
#[test]
fn serial_mode_forces_once_per_commit() {
    let db = db_with(Duration::ZERO, false);
    let mut s = Session::new(&db);
    for i in 0..5 {
        s.begin().unwrap();
        s.exec_params("INSERT INTO t (id) VALUES (?)", &[Value::Int(i)]).unwrap();
        s.commit().unwrap();
    }
    assert_eq!(db.wal_forces_total(), db.wal_commits_total());
}

/// The knob round-trips through `DbConfig` and the runtime setter.
#[test]
fn group_commit_knob_round_trips() {
    let db = db_with(Duration::ZERO, true);
    assert!(db.group_commit());
    db.set_group_commit(false);
    assert!(!db.group_commit());
    db.set_group_commit_wait(Duration::from_micros(100));
    db.set_group_commit(true);
    let mut s = Session::new(&db);
    s.begin().unwrap();
    s.exec_params("INSERT INTO t (id) VALUES (?)", &[Value::Int(1)]).unwrap();
    s.commit().unwrap();
    assert!(db.wal_forces_total() >= 1);
}
