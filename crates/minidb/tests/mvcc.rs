//! Snapshot-isolation tests for the MVCC read path: visibility rules,
//! snapshot stability, version GC, and the deferred index-entry removals
//! that keep old snapshots probe-able.

use std::thread;

use minidb::{Database, DbConfig, Session, Value};

fn db() -> Database {
    let config = DbConfig::for_tests();
    assert!(config.mvcc, "MVCC must be the default");
    let db = Database::new(config);
    let mut s = Session::new(&db);
    s.exec("CREATE TABLE t (id BIGINT NOT NULL, a VARCHAR, b BIGINT)").unwrap();
    s.exec("CREATE UNIQUE INDEX ix_id ON t (id)").unwrap();
    s.exec("CREATE INDEX ix_b ON t (b)").unwrap();
    db.set_table_stats("t", 1_000_000).unwrap();
    db.set_index_stats("ix_id", 1_000_000).unwrap();
    db.set_index_stats("ix_b", 1_000_000).unwrap();
    db
}

#[test]
fn no_dirty_reads_for_update_insert_delete() {
    let db = db();
    let mut s = Session::new(&db);
    s.exec("INSERT INTO t (id, a, b) VALUES (1, 'old', 10)").unwrap();

    let mut w = Session::new(&db);
    w.begin().unwrap();
    w.exec("UPDATE t SET a = 'new' WHERE id = 1").unwrap();
    w.exec("INSERT INTO t (id, a, b) VALUES (2, 'ins', 20)").unwrap();

    // A concurrent reader sees only the committed state — without blocking.
    let db2 = db.clone();
    let rows = thread::spawn(move || {
        let mut r = Session::new(&db2);
        r.query("SELECT id, a FROM t", &[]).unwrap()
    })
    .join()
    .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][1], Value::str("old"));

    w.rollback();
    let mut r = Session::new(&db);
    assert_eq!(r.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(), 1);
}

#[test]
fn snapshot_is_repeatable_within_a_transaction() {
    let db = db();
    let mut s = Session::new(&db);
    s.exec("INSERT INTO t (id, a, b) VALUES (1, 'v1', 10)").unwrap();

    let mut r = Session::new(&db);
    r.begin().unwrap();
    // First read pins the snapshot.
    assert_eq!(r.query("SELECT a FROM t WHERE id = 1", &[]).unwrap()[0][0], Value::str("v1"));

    // Another transaction commits a change mid-flight.
    let mut w = Session::new(&db);
    w.exec("UPDATE t SET a = 'v2' WHERE id = 1").unwrap();
    w.exec("INSERT INTO t (id, a, b) VALUES (2, 'x', 20)").unwrap();

    // The open transaction keeps seeing its snapshot: old value, old count,
    // through both the index probe and the full scan.
    assert_eq!(r.query("SELECT a FROM t WHERE id = 1", &[]).unwrap()[0][0], Value::str("v1"));
    assert_eq!(r.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(), 1);
    r.commit().unwrap();

    // A fresh snapshot sees the committed writes.
    let mut r2 = Session::new(&db);
    assert_eq!(r2.query("SELECT a FROM t WHERE id = 1", &[]).unwrap()[0][0], Value::str("v2"));
    assert_eq!(r2.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(), 2);
}

#[test]
fn writer_commit_invisible_to_older_snapshot() {
    let db = db();
    let mut s = Session::new(&db);
    for i in 0..5 {
        s.exec_params(
            "INSERT INTO t (id, a, b) VALUES (?, 'seed', ?)",
            &[Value::Int(i), Value::Int(i * 10)],
        )
        .unwrap();
    }

    let mut old = Session::new(&db);
    old.begin().unwrap();
    assert_eq!(old.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(), 5);

    // A writer deletes a row and commits while the old snapshot is open.
    let mut w = Session::new(&db);
    w.exec("DELETE FROM t WHERE id = 3").unwrap();

    // New sessions see 4 rows; the older snapshot still sees all 5 — the
    // deleted row is resolved from its version chain, and the stale index
    // entry (deferred removal) still routes the probe.
    let mut fresh = Session::new(&db);
    assert_eq!(fresh.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(), 4);
    assert_eq!(old.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(), 5);
    assert_eq!(old.query_int("SELECT COUNT(*) FROM t WHERE id = 3", &[]).unwrap(), 1);
    assert_eq!(old.query_int("SELECT COUNT(*) FROM t WHERE b = 30", &[]).unwrap(), 1);
    old.commit().unwrap();
}

#[test]
fn own_writes_are_visible_to_the_writing_transaction() {
    let db = db();
    let mut s = Session::new(&db);
    s.begin().unwrap();
    s.exec("INSERT INTO t (id, a, b) VALUES (1, 'mine', 10)").unwrap();
    assert_eq!(s.query("SELECT a FROM t WHERE id = 1", &[]).unwrap()[0][0], Value::str("mine"));
    s.exec("UPDATE t SET a = 'mine2' WHERE id = 1").unwrap();
    assert_eq!(s.query("SELECT a FROM t WHERE id = 1", &[]).unwrap()[0][0], Value::str("mine2"));
    s.commit().unwrap();
}

#[test]
fn gc_reclaims_versions_and_stale_index_entries() {
    let db = db();
    let mut s = Session::new(&db);
    s.exec("INSERT INTO t (id, a, b) VALUES (1, 'x', 10)").unwrap();

    // Churn one row so its chain and the ix_b stale entries accumulate.
    for i in 0..20 {
        s.exec_params("UPDATE t SET b = ? WHERE id = 1", &[Value::Int(100 + i)]).unwrap();
    }
    assert!(db.mvcc_version_chains() >= 1);
    assert!(db.mvcc_pending_unindex() >= 20, "stale ix_b keys queue for deferred removal");

    // No snapshots are active, so GC reclaims everything behind commit_ts.
    let watermark = db.mvcc_gc();
    assert_eq!(watermark, db.mvcc_commit_ts());
    assert_eq!(db.mvcc_pending_unindex(), 0, "ripe tombstones applied");
    assert_eq!(db.mvcc_version_chains(), 0, "fully-superseded chains dropped");
    assert_eq!(db.mvcc_watermark(), watermark);

    // The surviving state is exactly the latest image.
    assert_eq!(s.query_int("SELECT b FROM t WHERE id = 1", &[]).unwrap(), 119);
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE b = 119", &[]).unwrap(), 1);
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE b = 100", &[]).unwrap(), 0);
}

#[test]
fn gc_waits_for_active_snapshots() {
    let db = db();
    let mut s = Session::new(&db);
    s.exec("INSERT INTO t (id, a, b) VALUES (1, 'x', 10)").unwrap();

    let mut old = Session::new(&db);
    old.begin().unwrap();
    assert_eq!(old.query_int("SELECT b FROM t WHERE id = 1", &[]).unwrap(), 10);
    let pinned = db.mvcc_commit_ts();

    s.exec("UPDATE t SET b = 20 WHERE id = 1").unwrap();
    s.exec("UPDATE t SET b = 30 WHERE id = 1").unwrap();

    // GC cannot pass the active snapshot; the old version survives.
    let watermark = db.mvcc_gc();
    assert!(watermark <= pinned, "watermark {watermark} must not pass snapshot {pinned}");
    assert_eq!(old.query_int("SELECT b FROM t WHERE id = 1", &[]).unwrap(), 10);
    assert_eq!(old.query_int("SELECT COUNT(*) FROM t WHERE b = 10", &[]).unwrap(), 1);
    old.commit().unwrap();

    // Snapshot released: now GC reclaims the history.
    db.mvcc_gc();
    assert_eq!(db.mvcc_active_snapshots(), 0);
    assert_eq!(db.mvcc_version_chains(), 0);
    assert_eq!(s.query_int("SELECT b FROM t WHERE id = 1", &[]).unwrap(), 30);
}

#[test]
fn unique_index_tolerates_stale_entries() {
    let db = db();
    let mut s = Session::new(&db);
    s.exec("INSERT INTO t (id, a, b) VALUES (1, 'x', 10)").unwrap();

    // Move the row to a new unique key; the old ix_id entry lingers until
    // GC but must not count as a duplicate (heap-validated check).
    s.exec("UPDATE t SET id = 2 WHERE id = 1").unwrap();
    s.exec("INSERT INTO t (id, a, b) VALUES (1, 'y', 20)").unwrap();
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(), 2);

    // A real duplicate is still rejected.
    let err = s.exec("INSERT INTO t (id, a, b) VALUES (2, 'z', 30)");
    assert!(err.is_err(), "live duplicate key must still violate ix_id");
}

#[test]
fn for_share_blocks_on_uncommitted_writes() {
    // FOR SHARE opts a read back into 2PL: it must conflict with an
    // in-flight writer instead of resolving the snapshot.
    let db = db();
    let mut s = Session::new(&db);
    s.exec("INSERT INTO t (id, a, b) VALUES (1, 'x', 10)").unwrap();

    let mut w = Session::new(&db);
    w.begin().unwrap();
    w.exec("UPDATE t SET a = 'y' WHERE id = 1").unwrap();

    let db2 = db.clone();
    let locked = thread::spawn(move || {
        let mut r = Session::new(&db2);
        r.query("SELECT * FROM t WHERE id = 1 FOR SHARE", &[])
    })
    .join()
    .unwrap();
    assert!(locked.is_err(), "FOR SHARE must hit the writer's lock: {locked:?}");

    // The plain read of the same row is served from the snapshot.
    let mut r = Session::new(&db);
    assert_eq!(r.query("SELECT a FROM t WHERE id = 1", &[]).unwrap()[0][0], Value::str("x"));
    w.commit().unwrap();
}

#[test]
fn snapshot_reads_take_no_row_locks() {
    let db = db();
    let mut s = Session::new(&db);
    for i in 0..10 {
        s.exec_params(
            "INSERT INTO t (id, a, b) VALUES (?, 'r', ?)",
            &[Value::Int(i), Value::Int(i)],
        )
        .unwrap();
    }

    let mut r = Session::new(&db);
    r.begin().unwrap();
    assert_eq!(r.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(), 10);
    assert_eq!(r.query_int("SELECT COUNT(*) FROM t WHERE id = 5", &[]).unwrap(), 1);

    // While the reader's transaction is still open, a writer can update any
    // row — the reader holds no row/key locks that could block it.
    let mut w = Session::new(&db);
    w.exec("UPDATE t SET b = 99 WHERE id = 5").unwrap();
    w.exec("DELETE FROM t WHERE id = 6").unwrap();

    // And the reader's snapshot is unperturbed.
    assert_eq!(r.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(), 10);
    assert_eq!(r.query_int("SELECT b FROM t WHERE id = 5", &[]).unwrap(), 5);
    r.commit().unwrap();
}

#[test]
fn mvcc_off_falls_back_to_locking_reads() {
    let mut config = DbConfig::for_tests();
    config.mvcc = false;
    let db = Database::new(config);
    let mut s = Session::new(&db);
    s.exec("CREATE TABLE t (id BIGINT NOT NULL, a VARCHAR)").unwrap();
    s.exec("INSERT INTO t (id, a) VALUES (1, 'x')").unwrap();

    let before = db.mvcc_reads_total();
    let mut w = Session::new(&db);
    w.begin().unwrap();
    w.exec("UPDATE t SET a = 'y' WHERE id = 1").unwrap();

    let db2 = db.clone();
    let blocked = thread::spawn(move || {
        let mut r = Session::new(&db2);
        r.query("SELECT * FROM t WHERE id = 1", &[])
    })
    .join()
    .unwrap();
    assert!(blocked.is_err(), "2PL arm: plain reads block on writers: {blocked:?}");
    assert_eq!(db.mvcc_reads_total(), before, "no snapshot reads on the 2PL arm");
    w.rollback();
}
