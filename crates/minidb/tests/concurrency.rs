//! Concurrency tests: isolation, escalation, next-key locking behaviour,
//! and lock-list pressure, exercised through the SQL surface.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use minidb::{Database, DbConfig, DbError, Session, Value};

fn tuned(next_key: bool) -> Database {
    tuned_mvcc(next_key, true)
}

fn tuned_mvcc(next_key: bool, mvcc: bool) -> Database {
    let mut config = DbConfig::for_tests();
    config.next_key_locking = next_key;
    config.mvcc = mvcc;
    let db = Database::new(config);
    let mut s = Session::new(&db);
    s.exec("CREATE TABLE t (id BIGINT NOT NULL, a VARCHAR, b BIGINT)").unwrap();
    s.exec("CREATE UNIQUE INDEX ix_id ON t (id)").unwrap();
    s.exec("CREATE INDEX ix_a ON t (a)").unwrap();
    s.exec("CREATE INDEX ix_b ON t (b)").unwrap();
    db.set_table_stats("t", 1_000_000).unwrap();
    for ix in ["ix_id", "ix_a", "ix_b"] {
        db.set_index_stats(ix, 1_000_000).unwrap();
    }
    db
}

#[test]
fn uncommitted_writes_invisible_to_other_sessions_until_commit() {
    // Pure-2PL arm: a reader blocks on the uncommitted row (strict 2PL, no
    // dirty reads); with the short test timeout it gives up.
    let db = tuned_mvcc(false, false);
    let mut w = Session::new(&db);
    w.begin().unwrap();
    w.exec("INSERT INTO t (id, a, b) VALUES (1, 'x', 0)").unwrap();

    let db2 = db.clone();
    let r = thread::spawn(move || {
        let mut s = Session::new(&db2);
        s.query_int("SELECT COUNT(*) FROM t WHERE id = 1", &[])
    });
    let result = r.join().unwrap();
    assert!(matches!(result, Err(DbError::LockTimeout { .. })), "{result:?}");

    w.commit().unwrap();
    let mut s = Session::new(&db);
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE id = 1", &[]).unwrap(), 1);
}

#[test]
fn mvcc_reader_skips_uncommitted_write_without_blocking() {
    // MVCC arm of the same scenario: the reader neither blocks nor sees the
    // dirty row — it resolves the snapshot image (empty) immediately.
    let db = tuned(false);
    let mut w = Session::new(&db);
    w.begin().unwrap();
    w.exec("INSERT INTO t (id, a, b) VALUES (1, 'x', 0)").unwrap();

    let db2 = db.clone();
    let r = thread::spawn(move || {
        let mut s = Session::new(&db2);
        s.query_int("SELECT COUNT(*) FROM t WHERE id = 1", &[])
    });
    assert_eq!(r.join().unwrap().unwrap(), 0);
    assert!(db.mvcc_reads_total() >= 1);

    w.commit().unwrap();
    let mut s = Session::new(&db);
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE id = 1", &[]).unwrap(), 1);
}

#[test]
fn readers_do_not_block_readers() {
    let db = tuned(false);
    let mut s = Session::new(&db);
    s.exec("INSERT INTO t (id, a, b) VALUES (1, 'x', 0)").unwrap();
    let mut handles = Vec::new();
    for _ in 0..8 {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            let mut s = Session::new(&db);
            for _ in 0..50 {
                s.query_int("SELECT COUNT(*) FROM t WHERE id = 1", &[]).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_unique_inserts_one_winner() {
    // The race the paper closes with the check-flag unique index: two
    // agents inserting the same key concurrently — exactly one wins.
    let db = Arc::new(tuned(false));
    let wins = Arc::new(AtomicU64::new(0));
    let dups = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let db = db.clone();
        let wins = wins.clone();
        let dups = dups.clone();
        handles.push(thread::spawn(move || {
            let mut s = Session::new(&db);
            for key in 0..50i64 {
                match s
                    .exec_params("INSERT INTO t (id, a, b) VALUES (?, 'c', 0)", &[Value::Int(key)])
                {
                    Ok(_) => {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(DbError::UniqueViolation { .. }) => {
                        dups.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(DbError::LockTimeout { .. }) | Err(DbError::Deadlock { .. }) => {}
                    Err(e) => panic!("unexpected {e}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut s = Session::new(&db);
    let n = s.query_int("SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(n as u64, wins.load(Ordering::Relaxed));
    assert!(n <= 50);
}

#[test]
fn next_key_locking_produces_deadlocks_where_off_does_not() {
    // A compact version of experiment E2: updaters rewriting an indexed
    // column to values in a *shared* key space. Under next-key locking the
    // old key and new key of one update are acquired in value order that
    // differs between transactions (old may sort before or after new), so
    // two updaters invert each other's acquisition order and deadlock.
    // Without next-key locking each transaction only locks its own row.
    fn churn(db: &Database) -> u64 {
        {
            let mut s = Session::new(db);
            for c in 0..6i64 {
                s.exec_params(
                    "INSERT INTO t (id, a, b) VALUES (?, ?, 0)",
                    &[Value::Int(c), Value::str(format!("s{c}"))],
                )
                .unwrap();
            }
        }
        let mut handles = Vec::new();
        for c in 0..6i64 {
            let db = db.clone();
            handles.push(thread::spawn(move || {
                let mut s = Session::new(&db);
                for i in 0..120i64 {
                    // Each client updates only its own row, but the indexed
                    // value moves around a shared keyspace.
                    let _ = s.exec_params(
                        "UPDATE t SET a = ? WHERE id = ?",
                        &[Value::str(format!("s{}", (c * 31 + i * 17) % 23)), Value::Int(c)],
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        db.lock_metrics().snapshot().deadlocks
    }
    let with_nkl = churn(&tuned(true));
    let without_nkl = churn(&tuned(false));
    assert_eq!(without_nkl, 0, "no deadlocks without next-key locking");
    assert!(
        with_nkl > 0,
        "shared-keyspace updates under next-key locking should deadlock (got {with_nkl})"
    );
}

#[test]
fn escalation_covers_future_row_locks() {
    let mut config = DbConfig::for_tests();
    config.lock_escalation_threshold = Some(10);
    config.next_key_locking = false;
    // Pure-2PL arm: escalation to a table X lock blocks even readers.
    config.mvcc = false;
    let db = Database::new(config);
    let mut s = Session::new(&db);
    s.exec("CREATE TABLE t (id BIGINT NOT NULL)").unwrap();
    for i in 0..30 {
        s.exec_params("INSERT INTO t (id) VALUES (?)", &[Value::Int(i)]).unwrap();
    }
    s.begin().unwrap();
    // Updating everything crosses the threshold and escalates.
    s.exec("UPDATE t SET id = id + 1000 WHERE id >= 0").unwrap();
    assert!(db.lock_metrics().snapshot().escalations >= 1);
    // Another session cannot even read now (table X lock).
    let db2 = db.clone();
    let r = thread::spawn(move || {
        let mut s2 = Session::new(&db2);
        s2.query_int("SELECT COUNT(*) FROM t", &[])
    })
    .join()
    .unwrap();
    assert!(matches!(r, Err(DbError::LockTimeout { .. })));
    s.commit().unwrap();
    let mut s2 = Session::new(&db);
    assert_eq!(s2.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(), 30);
}

#[test]
fn mvcc_reader_ignores_escalated_table_lock() {
    // MVCC arm: the same table X escalation does not slow a snapshot
    // reader, which sees the pre-update images.
    let mut config = DbConfig::for_tests();
    config.lock_escalation_threshold = Some(10);
    config.next_key_locking = false;
    let db = Database::new(config);
    let mut s = Session::new(&db);
    s.exec("CREATE TABLE t (id BIGINT NOT NULL)").unwrap();
    for i in 0..30 {
        s.exec_params("INSERT INTO t (id) VALUES (?)", &[Value::Int(i)]).unwrap();
    }
    s.begin().unwrap();
    s.exec("UPDATE t SET id = id + 1000 WHERE id >= 0").unwrap();
    assert!(db.lock_metrics().snapshot().escalations >= 1);
    let db2 = db.clone();
    let r = thread::spawn(move || {
        let mut s2 = Session::new(&db2);
        (
            s2.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(),
            s2.query_int("SELECT COUNT(*) FROM t WHERE id >= 1000", &[]).unwrap(),
        )
    })
    .join()
    .unwrap();
    assert_eq!(r, (30, 0), "snapshot reader sees all pre-update rows");
    s.commit().unwrap();
    let mut s2 = Session::new(&db);
    assert_eq!(s2.query_int("SELECT COUNT(*) FROM t WHERE id >= 1000", &[]).unwrap(), 30);
}

#[test]
fn lock_list_pressure_escalates_even_when_threshold_disabled() {
    // DB2 semantics: a full lock list *forces* escalation regardless of the
    // per-transaction threshold ("lock list size should be set sufficiently
    // large to avoid forced lock escalation", §4).
    let mut config = DbConfig::for_tests();
    config.lock_escalation_threshold = None;
    config.lock_list_capacity = 40;
    let db = Database::new(config);
    let mut s = Session::new(&db);
    s.exec("CREATE TABLE t (id BIGINT NOT NULL)").unwrap();
    for i in 0..60 {
        s.exec_params("INSERT INTO t (id) VALUES (?)", &[Value::Int(i)]).unwrap();
    }
    s.begin().unwrap();
    s.exec("UPDATE t SET id = id + 1000 WHERE id >= 0").unwrap();
    assert!(
        db.lock_metrics().snapshot().escalations >= 1,
        "lock-list pressure must force an escalation"
    );
    s.commit().unwrap();
}

#[test]
fn lock_list_pressure_triggers_escalation_when_enabled() {
    let mut config = DbConfig::for_tests();
    // Escalation nominally off by threshold, but the lock list forces it.
    config.lock_escalation_threshold = Some(1_000_000);
    config.lock_list_capacity = 40;
    let db = Database::new(config);
    let mut s = Session::new(&db);
    s.exec("CREATE TABLE t (id BIGINT NOT NULL)").unwrap();
    for i in 0..60 {
        s.exec_params("INSERT INTO t (id) VALUES (?)", &[Value::Int(i)]).unwrap();
    }
    s.begin().unwrap();
    s.exec("UPDATE t SET id = id + 1000 WHERE id >= 0").unwrap();
    assert!(db.lock_metrics().snapshot().escalations >= 1);
    s.commit().unwrap();
}

#[test]
fn for_update_blocks_writers_but_for_share_does_not_block_readers() {
    let db = tuned(false);
    let mut s = Session::new(&db);
    s.exec("INSERT INTO t (id, a, b) VALUES (1, 'x', 0)").unwrap();
    s.begin().unwrap();
    s.exec("SELECT * FROM t WHERE id = 1 FOR UPDATE").unwrap();

    // Another reader (plain select) blocks on the X row lock.
    let db2 = db.clone();
    let r = thread::spawn(move || {
        let mut s2 = Session::new(&db2);
        s2.exec("UPDATE t SET b = 1 WHERE id = 1")
    })
    .join()
    .unwrap();
    assert!(matches!(r, Err(DbError::LockTimeout { .. })));
    s.commit().unwrap();
}

#[test]
fn high_contention_mixed_workload_converges() {
    // Smoke: 8 threads hammering 16 rows with mixed ops; every failure must
    // be a classified transient error, and the table stays consistent.
    let db = Arc::new(tuned(false));
    {
        let mut s = Session::new(&db);
        for i in 0..16 {
            s.exec_params("INSERT INTO t (id, a, b) VALUES (?, 'seed', 0)", &[Value::Int(i)])
                .unwrap();
        }
    }
    let mut handles = Vec::new();
    for c in 0..8u64 {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            let mut s = Session::new(&db);
            for i in 0..80u64 {
                let id = ((c * 31 + i * 17) % 16) as i64;
                let r = match i % 3 {
                    0 => s.exec_params("UPDATE t SET b = b + 1 WHERE id = ?", &[Value::Int(id)]),
                    1 => s.exec_params("SELECT b FROM t WHERE id = ?", &[Value::Int(id)]),
                    _ => s.exec_params(
                        "UPDATE t SET a = ? WHERE id = ?",
                        &[Value::str(format!("c{c}")), Value::Int(id)],
                    ),
                };
                if let Err(e) = r {
                    assert!(e.is_rollback_forced(), "only transient failures allowed, got {e}");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut s = Session::new(&db);
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(), 16);
    // Index and heap agree for every row.
    for i in 0..16 {
        assert_eq!(s.query_int(&format!("SELECT COUNT(*) FROM t WHERE id = {i}"), &[]).unwrap(), 1);
    }
}

#[test]
fn statement_timeout_keeps_transaction_usable_on_other_resources() {
    // A lock timeout rolls back the whole transaction (DB2 -911 style);
    // verify the session is immediately usable for a fresh transaction.
    let db = tuned(false);
    let mut holder = Session::new(&db);
    let mut s = Session::new(&db);
    s.exec("INSERT INTO t (id, a, b) VALUES (1, 'x', 0)").unwrap();
    holder.begin().unwrap();
    holder.exec("UPDATE t SET b = 1 WHERE id = 1").unwrap();

    s.begin().unwrap();
    let err = s.exec("UPDATE t SET b = 2 WHERE id = 1").unwrap_err();
    assert!(err.is_rollback_forced());
    assert!(!s.in_txn(), "forced rollback must close the transaction");
    holder.commit().unwrap();
    // Fresh transaction works.
    s.begin().unwrap();
    s.exec("UPDATE t SET b = 3 WHERE id = 1").unwrap();
    s.commit().unwrap();
    let mut v = Session::new(&db);
    assert_eq!(v.query_int("SELECT b FROM t WHERE id = 1", &[]).unwrap(), 3);
}

#[test]
fn deleted_slot_not_reused_while_delete_uncommitted() {
    // Regression test for the slot-reuse hazard: a deleter holds the row
    // lock; a concurrent insert must NOT land on the freed slot and block
    // behind a foreign identity.
    let db = tuned(false);
    let mut a = Session::new(&db);
    a.exec("INSERT INTO t (id, a, b) VALUES (1, 'x', 0)").unwrap();
    a.begin().unwrap();
    a.exec("DELETE FROM t WHERE id = 1").unwrap();

    // Concurrent insert of a different key must not block.
    let db2 = db.clone();
    let h = thread::spawn(move || {
        let mut b = Session::new(&db2);
        b.exec("INSERT INTO t (id, a, b) VALUES (2, 'y', 0)")
    });
    let r = h.join().unwrap();
    assert!(r.is_ok(), "insert must not contend with the uncommitted delete: {r:?}");
    a.rollback();
    // The aborted delete restored row 1; both rows visible and distinct.
    let mut s = Session::new(&db);
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(), 2);
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE id = 1", &[]).unwrap(), 1);
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE id = 2", &[]).unwrap(), 1);
}

#[test]
fn range_scans_use_the_index_and_lock_only_matching_rows() {
    let db = tuned(false);
    let mut s = Session::new(&db);
    for i in 0..50 {
        s.exec_params(
            "INSERT INTO t (id, a, b) VALUES (?, 'x', ?)",
            &[Value::Int(i), Value::Int(i)],
        )
        .unwrap();
    }
    // Plan: range over ix_b.
    s.exec("CREATE INDEX ix_b2 ON t (b)").ok();
    let plan = s.query("EXPLAIN SELECT * FROM t WHERE b >= 40 AND b < 45", &[]).unwrap()[0][0]
        .as_str()
        .unwrap()
        .to_string();
    assert!(plan.starts_with("IXRANGE"), "{plan}");
    let rows = s.query("SELECT id FROM t WHERE b >= 40 AND b < 45 ORDER BY id", &[]).unwrap();
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[0][0].as_int().unwrap(), 40);

    // A writer holding a row OUTSIDE the range does not block the ranged
    // UPDATE (table scans would have).
    let mut holder = Session::new(&db);
    holder.begin().unwrap();
    holder.exec("UPDATE t SET a = 'h' WHERE id = 0").unwrap();
    let n = s.exec("UPDATE t SET a = 'r' WHERE b >= 40 AND b < 45").unwrap().count();
    assert_eq!(n, 5);
    holder.rollback();
}

#[test]
fn range_bounds_flip_when_column_is_on_the_right() {
    let db = tuned(false);
    let mut s = Session::new(&db);
    for i in 0..10 {
        s.exec_params(
            "INSERT INTO t (id, a, b) VALUES (?, 'x', ?)",
            &[Value::Int(i), Value::Int(i)],
        )
        .unwrap();
    }
    // `5 > b` means `b < 5`.
    let rows = s.query("SELECT id FROM t WHERE 5 > b ORDER BY id", &[]).unwrap();
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[4][0].as_int().unwrap(), 4);
}
