//! SQL semantics edge cases: NULL handling, ordering, EXCEPT, aggregates,
//! parameter markers, and error reporting.

use minidb::{Database, DbConfig, DbError, Session, Value};

fn db() -> Database {
    let db = Database::new(DbConfig::for_tests());
    let mut s = Session::new(&db);
    s.exec("CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR, n BIGINT)").unwrap();
    s.exec("CREATE UNIQUE INDEX ix_id ON t (id)").unwrap();
    db
}

#[test]
fn null_comparisons_are_unknown() {
    let d = db();
    let mut s = Session::new(&d);
    s.exec("INSERT INTO t (id, name, n) VALUES (1, NULL, 5)").unwrap();
    s.exec("INSERT INTO t (id, name, n) VALUES (2, 'x', NULL)").unwrap();
    // NULL = 'x' is unknown: filtered out, not matched.
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE name = 'x'", &[]).unwrap(), 1);
    // <> also excludes NULLs.
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE name <> 'x'", &[]).unwrap(), 0);
    // IS NULL / IS NOT NULL are the only way to see them.
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE name IS NULL", &[]).unwrap(), 1);
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE n IS NOT NULL", &[]).unwrap(), 1);
    // Arithmetic with NULL yields NULL (row filtered in predicates).
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE n + 1 > 0", &[]).unwrap(), 1);
}

#[test]
fn order_by_multiple_keys_mixed_direction() {
    let d = db();
    let mut s = Session::new(&d);
    for (id, name, n) in [(1, "b", 1), (2, "a", 2), (3, "b", 3), (4, "a", 1)] {
        s.exec_params(
            "INSERT INTO t (id, name, n) VALUES (?, ?, ?)",
            &[Value::Int(id), Value::str(name), Value::Int(n)],
        )
        .unwrap();
    }
    let rows = s.query("SELECT id FROM t ORDER BY name ASC, n DESC", &[]).unwrap();
    let ids: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(ids, vec![2, 4, 3, 1]);
}

#[test]
fn nulls_sort_first() {
    let d = db();
    let mut s = Session::new(&d);
    s.exec("INSERT INTO t (id, name, n) VALUES (1, 'z', 0)").unwrap();
    s.exec("INSERT INTO t (id, name, n) VALUES (2, NULL, 0)").unwrap();
    let rows = s.query("SELECT id FROM t ORDER BY name", &[]).unwrap();
    assert_eq!(rows[0][0].as_int().unwrap(), 2, "NULL sorts lowest");
}

#[test]
fn except_removes_duplicates_and_differences() {
    let d = db();
    let mut s = Session::new(&d);
    s.exec("CREATE TABLE u (name VARCHAR)").unwrap();
    for (id, name) in [(1, "a"), (2, "a"), (3, "b"), (4, "c")] {
        s.exec_params(
            "INSERT INTO t (id, name, n) VALUES (?, ?, 0)",
            &[Value::Int(id), Value::str(name)],
        )
        .unwrap();
    }
    s.exec("INSERT INTO u (name) VALUES ('c')").unwrap();
    let rows = s.query("SELECT name FROM t EXCEPT SELECT name FROM u", &[]).unwrap();
    let mut names: Vec<String> = rows.iter().map(|r| r[0].as_str().unwrap().to_string()).collect();
    names.sort();
    // 'a' appears once (set semantics), 'c' removed.
    assert_eq!(names, vec!["a", "b"]);
}

#[test]
fn aggregates_over_empty_and_null_sets() {
    let d = db();
    let mut s = Session::new(&d);
    let row = s.query_opt("SELECT COUNT(*), MIN(n), MAX(n), SUM(n) FROM t", &[]).unwrap().unwrap();
    assert_eq!(row[0], Value::Int(0));
    assert_eq!(row[1], Value::Null);
    assert_eq!(row[2], Value::Null);
    assert_eq!(row[3], Value::Null);
    // NULLs are ignored by column aggregates but counted by COUNT(*).
    s.exec("INSERT INTO t (id, name, n) VALUES (1, 'a', NULL)").unwrap();
    s.exec("INSERT INTO t (id, name, n) VALUES (2, 'b', 7)").unwrap();
    let row = s.query_opt("SELECT COUNT(*), COUNT(n), SUM(n) FROM t", &[]).unwrap().unwrap();
    assert_eq!(row[0], Value::Int(2));
    assert_eq!(row[1], Value::Int(1));
    assert_eq!(row[2], Value::Int(7));
}

#[test]
fn parameter_markers_are_positional_across_the_statement() {
    let d = db();
    let mut s = Session::new(&d);
    s.exec_params(
        "INSERT INTO t (id, name, n) VALUES (?, ?, ?)",
        &[Value::Int(1), Value::str("x"), Value::Int(10)],
    )
    .unwrap();
    // Marker 0 in SET, marker 1 in WHERE.
    let count = s
        .exec_params("UPDATE t SET n = ? WHERE id = ?", &[Value::Int(99), Value::Int(1)])
        .unwrap()
        .count();
    assert_eq!(count, 1);
    assert_eq!(s.query_int("SELECT n FROM t WHERE id = 1", &[]).unwrap(), 99);
    // Missing parameter is a clean error.
    let e = s.exec_params("SELECT * FROM t WHERE id = ?", &[]).unwrap_err();
    assert!(matches!(e, DbError::MissingParam(0)), "{e:?}");
}

#[test]
fn projection_expressions_evaluate() {
    let d = db();
    let mut s = Session::new(&d);
    s.exec("INSERT INTO t (id, name, n) VALUES (1, 'x', 40)").unwrap();
    let row = s.query_opt("SELECT n + 2, id FROM t WHERE id = 1", &[]).unwrap().unwrap();
    assert_eq!(row[0], Value::Int(42));
    assert_eq!(row[1], Value::Int(1));
}

#[test]
fn type_and_constraint_errors_are_statement_level() {
    let d = db();
    let mut s = Session::new(&d);
    s.begin().unwrap();
    s.exec("INSERT INTO t (id, name, n) VALUES (1, 'ok', 0)").unwrap();
    // NOT NULL violation.
    let e = s.exec("INSERT INTO t (name, n) VALUES ('bad', 0)").unwrap_err();
    assert!(matches!(e, DbError::Constraint(_)));
    // Type violation.
    let e = s.exec("INSERT INTO t (id, name, n) VALUES ('oops', 'bad', 0)").unwrap_err();
    assert!(matches!(e, DbError::Type(_)));
    // Unknown column in predicate.
    let e = s.exec("SELECT * FROM t WHERE nope = 1").unwrap_err();
    assert!(matches!(e, DbError::Plan(_)));
    // The transaction survived all three statement failures.
    s.exec("INSERT INTO t (id, name, n) VALUES (2, 'ok2', 0)").unwrap();
    s.commit().unwrap();
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t", &[]).unwrap(), 2);
}

#[test]
fn boolean_literals_and_not() {
    let d = db();
    let mut s = Session::new(&d);
    s.exec("CREATE TABLE flags (id BIGINT, ok BOOLEAN)").unwrap();
    s.exec("INSERT INTO flags (id, ok) VALUES (1, TRUE)").unwrap();
    s.exec("INSERT INTO flags (id, ok) VALUES (2, FALSE)").unwrap();
    assert_eq!(s.query_int("SELECT COUNT(*) FROM flags WHERE ok = TRUE", &[]).unwrap(), 1);
    assert_eq!(s.query_int("SELECT COUNT(*) FROM flags WHERE NOT ok = TRUE", &[]).unwrap(), 1);
}

#[test]
fn or_predicates_and_parentheses() {
    let d = db();
    let mut s = Session::new(&d);
    for i in 0..6 {
        s.exec_params(
            "INSERT INTO t (id, name, n) VALUES (?, 'x', ?)",
            &[Value::Int(i), Value::Int(i)],
        )
        .unwrap();
    }
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE n = 1 OR n = 4", &[]).unwrap(), 2);
    assert_eq!(
        s.query_int("SELECT COUNT(*) FROM t WHERE (n = 1 OR n = 4) AND id > 2", &[]).unwrap(),
        1
    );
}

#[test]
fn string_escapes_round_trip() {
    let d = db();
    let mut s = Session::new(&d);
    s.exec("INSERT INTO t (id, name, n) VALUES (1, 'O''Hara', 0)").unwrap();
    let row = s.query_opt("SELECT name FROM t WHERE name = 'O''Hara'", &[]).unwrap().unwrap();
    assert_eq!(row[0].as_str().unwrap(), "O'Hara");
}

#[test]
fn unknown_table_and_duplicate_ddl_errors() {
    let d = db();
    let mut s = Session::new(&d);
    assert!(matches!(s.exec("SELECT * FROM missing"), Err(DbError::NotFound(_))));
    assert!(matches!(s.exec("CREATE TABLE t (x BIGINT)"), Err(DbError::AlreadyExists(_))));
    assert!(matches!(
        s.exec("CREATE UNIQUE INDEX ix_id ON t (id)"),
        Err(DbError::AlreadyExists(_))
    ));
}

#[test]
fn create_unique_index_on_duplicated_data_fails_cleanly() {
    let d = db();
    let mut s = Session::new(&d);
    s.exec("INSERT INTO t (id, name, n) VALUES (1, 'a', 0)").unwrap();
    s.exec("INSERT INTO t (id, name, n) VALUES (2, 'a', 0)").unwrap();
    let e = s.exec("CREATE UNIQUE INDEX ix_name ON t (name)").unwrap_err();
    assert!(matches!(e, DbError::UniqueViolation { .. }));
    // The failed index is fully rolled back: name reusable, plans unaffected.
    s.exec("CREATE INDEX ix_name ON t (name)").unwrap();
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE name = 'a'", &[]).unwrap(), 2);
}
