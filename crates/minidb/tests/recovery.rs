//! Crash/restart recovery tests for the storage engine: the persistence
//! and recoverability DLFM outsources to its local database (paper §1).

use minidb::{Database, DbConfig, DbError, Session, Value};

fn fresh() -> Database {
    let db = Database::new(DbConfig::for_tests());
    let mut s = Session::new(&db);
    s.exec("CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR, v BIGINT)").unwrap();
    s.exec("CREATE UNIQUE INDEX ix_id ON t (id)").unwrap();
    s.exec("CREATE INDEX ix_name ON t (name)").unwrap();
    db
}

fn count(db: &Database, sql: &str) -> i64 {
    Session::new(db).query_int(sql, &[]).unwrap()
}

#[test]
fn committed_work_survives_crash() {
    let db = fresh();
    let mut s = Session::new(&db);
    for i in 0..10 {
        s.exec_params(
            "INSERT INTO t (id, name, v) VALUES (?, ?, ?)",
            &[Value::Int(i), Value::str(format!("n{i}")), Value::Int(i * 10)],
        )
        .unwrap();
    }
    drop(s);
    let lost = db.crash();
    assert_eq!(lost, 0, "committed work was forced");
    db.restart().unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 10);
    // Both heap and indexes recovered: point query through the index.
    let mut s = Session::new(&db);
    let v = s.query_int("SELECT v FROM t WHERE id = 7", &[]).unwrap();
    assert_eq!(v, 70);
}

#[test]
fn uncommitted_work_vanishes() {
    let db = fresh();
    let mut s = Session::new(&db);
    s.exec_params("INSERT INTO t (id, name, v) VALUES (1, 'a', 0)", &[]).unwrap();
    s.begin().unwrap();
    s.exec_params("INSERT INTO t (id, name, v) VALUES (2, 'b', 0)", &[]).unwrap();
    // No commit: the second insert is volatile.
    db.crash();
    db.restart().unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 1);
    // The lost transaction's locks are gone too: the row can be written.
    let mut s2 = Session::new(&db);
    s2.exec_params("INSERT INTO t (id, name, v) VALUES (2, 'b2', 0)", &[]).unwrap();
}

#[test]
fn updates_and_deletes_replay_correctly() {
    let db = fresh();
    let mut s = Session::new(&db);
    for i in 0..6 {
        s.exec_params("INSERT INTO t (id, name, v) VALUES (?, 'x', 0)", &[Value::Int(i)]).unwrap();
    }
    s.exec("UPDATE t SET v = 99, name = 'upd' WHERE id = 3").unwrap();
    s.exec("DELETE FROM t WHERE id = 1").unwrap();
    drop(s);
    db.crash();
    db.restart().unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 5);
    let mut s = Session::new(&db);
    assert_eq!(s.query_int("SELECT v FROM t WHERE id = 3", &[]).unwrap(), 99);
    // Index on the updated column was maintained through replay.
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE name = 'upd'", &[]).unwrap(), 1);
    assert_eq!(s.query_int("SELECT COUNT(*) FROM t WHERE name = 'x'", &[]).unwrap(), 4);
    assert!(s.query_opt("SELECT * FROM t WHERE id = 1", &[]).unwrap().is_none());
}

#[test]
fn savepoint_rollback_then_commit_replays_net_effect() {
    // Compensation records must keep replay consistent when a committed
    // transaction contains statement-rolled-back work.
    let db = fresh();
    let mut s = Session::new(&db);
    s.begin().unwrap();
    s.exec_params("INSERT INTO t (id, name, v) VALUES (1, 'keep', 0)", &[]).unwrap();
    let sp = s.savepoint().unwrap();
    s.exec_params("INSERT INTO t (id, name, v) VALUES (2, 'drop', 0)", &[]).unwrap();
    s.exec("UPDATE t SET v = 5 WHERE id = 1").unwrap();
    s.rollback_to(sp).unwrap();
    s.commit().unwrap();
    drop(s);
    db.crash();
    db.restart().unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 1);
    let mut s = Session::new(&db);
    assert_eq!(s.query_int("SELECT v FROM t WHERE id = 1", &[]).unwrap(), 0);
}

#[test]
fn checkpoint_then_tail_replay() {
    let db = fresh();
    let mut s = Session::new(&db);
    for i in 0..5 {
        s.exec_params("INSERT INTO t (id, name, v) VALUES (?, 'pre', 0)", &[Value::Int(i)])
            .unwrap();
    }
    db.checkpoint();
    s.exec("DELETE FROM t WHERE id = 0").unwrap();
    for i in 10..13 {
        s.exec_params("INSERT INTO t (id, name, v) VALUES (?, 'post', 0)", &[Value::Int(i)])
            .unwrap();
    }
    drop(s);
    db.crash();
    db.restart().unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 7);
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t WHERE name = 'post'"), 3);
}

#[test]
fn ddl_survives_crash() {
    let db = fresh();
    let mut s = Session::new(&db);
    s.exec("CREATE TABLE extra (k BIGINT NOT NULL)").unwrap();
    s.exec_params("INSERT INTO extra (k) VALUES (42)", &[]).unwrap();
    drop(s);
    db.crash();
    db.restart().unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM extra"), 1);
    // Index created after data existed is rebuilt by replay.
    let mut s = Session::new(&db);
    s.exec("CREATE INDEX ix_extra ON extra (k)").unwrap();
    drop(s);
    db.crash();
    db.restart().unwrap();
    let mut s = Session::new(&db);
    db.set_table_stats("extra", 1_000).unwrap();
    db.set_index_stats("ix_extra", 1_000).unwrap();
    let plan = s.query("EXPLAIN SELECT * FROM extra WHERE k = 42", &[]).unwrap()[0][0]
        .as_str()
        .unwrap()
        .to_string();
    assert!(plan.starts_with("IXSCAN"), "{plan}");
    assert_eq!(s.query_int("SELECT COUNT(*) FROM extra WHERE k = 42", &[]).unwrap(), 1);
}

#[test]
fn drop_table_survives_crash() {
    let db = fresh();
    let mut s = Session::new(&db);
    s.exec("CREATE TABLE doomed (k BIGINT)").unwrap();
    s.exec("DROP TABLE doomed").unwrap();
    drop(s);
    db.crash();
    db.restart().unwrap();
    let mut s = Session::new(&db);
    assert!(matches!(s.query_int("SELECT COUNT(*) FROM doomed", &[]), Err(DbError::NotFound(_))));
    // Name reusable after restart.
    s.exec("CREATE TABLE doomed (k BIGINT)").unwrap();
}

#[test]
fn operations_while_offline_fail_cleanly() {
    let db = fresh();
    db.crash();
    let mut s = Session::new(&db);
    assert!(matches!(s.exec("SELECT COUNT(*) FROM t"), Err(DbError::Offline)));
    db.restart().unwrap();
    s.exec("SELECT COUNT(*) FROM t").unwrap();
}

#[test]
fn repeated_crash_restart_cycles_are_stable() {
    let db = fresh();
    for round in 0..5i64 {
        let mut s = Session::new(&db);
        s.exec_params(
            "INSERT INTO t (id, name, v) VALUES (?, 'r', ?)",
            &[Value::Int(round), Value::Int(round)],
        )
        .unwrap();
        drop(s);
        db.crash();
        db.restart().unwrap();
        assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), round + 1);
    }
    // Unique index still enforced after all the cycles.
    let mut s = Session::new(&db);
    assert!(matches!(
        s.exec("INSERT INTO t (id, name, v) VALUES (0, 'dup', 0)"),
        Err(DbError::UniqueViolation { .. })
    ));
}

#[test]
fn backup_image_restore_roundtrip() {
    let db = fresh();
    let mut s = Session::new(&db);
    for i in 0..4 {
        s.exec_params("INSERT INTO t (id, name, v) VALUES (?, 'a', 0)", &[Value::Int(i)]).unwrap();
    }
    let image = db.backup_image();
    s.exec("DELETE FROM t WHERE id >= 2").unwrap();
    s.exec("UPDATE t SET v = 9 WHERE id = 0").unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 2);
    drop(s);
    db.restore_image(&image);
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 4);
    let mut s = Session::new(&db);
    assert_eq!(s.query_int("SELECT v FROM t WHERE id = 0", &[]).unwrap(), 0);
    // Restored state survives a crash (restore checkpoints).
    drop(s);
    db.crash();
    db.restart().unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 4);
}

#[test]
fn monotonic_txn_ids_across_restart() {
    // The paper calls host transaction-id monotonicity "absolutely
    // essential"; our engine preserves it across crash/restart.
    let db = fresh();
    // Ids are monotonic with respect to every *durable* record: any id that
    // reached the forced log is never handed out again after a restart.
    // (Ids of transactions whose records were lost with the volatile tail
    // may be reused — their records no longer exist, so no confusion is
    // possible.)
    let mut s = Session::new(&db);
    s.begin().unwrap();
    s.exec_params("INSERT INTO t (id, name, v) VALUES (100, 'x', 0)", &[]).unwrap();
    s.rollback();
    // A committed (forced) transaction pins the sequence.
    s.exec_params("INSERT INTO t (id, name, v) VALUES (101, 'y', 0)", &[]).unwrap();
    let durable_floor = db.begin().id.0; // every durable id is below this
    drop(s);
    db.crash();
    db.restart().unwrap();
    let t2 = db.begin();
    // The committed transaction's id was durable_floor - 1; anything at or
    // above durable_floor is collision-free with durable history.
    assert!(
        t2.id.0 >= durable_floor,
        "txn ids must not collide with durable history ({} vs floor {durable_floor})",
        t2.id.0
    );
}
