//! Length-prefixed frame codec for the socket transport.
//!
//! Every message between a host process and a DLFM process is one
//! **frame** (protocol version 2):
//!
//! ```text
//! +--------+-------+-----+------+-------------+----------+
//! | len u32| magic | ver | kind | session u64 | corr u64 |
//! |        | u16   | u8  | u8   |             |          |
//! +--------+-------+-----+------+-------------+----------+
//! | trace_id u64 | parent_span u64 | cksum u32| payload  |
//! |              |                 |          | len - 40 |
//! +--------------+-----------------+----------+----------+
//! ```
//!
//! * `len` counts every byte after itself (header tail + payload), so a
//!   reader can frame the stream without understanding the payload;
//! * `magic`/`ver` reject cross-protocol or cross-version peers early;
//! * `kind` is one of Call/Post/Reply/Hangup/Ping/Pong;
//! * `session` multiplexes many logical connections over one socket;
//! * `corr` matches a Reply (or Pong) to the parked caller that sent the
//!   Call (or Ping);
//! * `trace_id`/`parent_span` (v2) carry the sender's trace context on
//!   Call/Post frames — 0 when the sender had none — so spans opened by
//!   the remote agent parent under the originating host statement and a
//!   cross-process transaction renders as one coherent trace;
//! * `cksum` is an FNV-1a digest of the payload: a corrupted frame is
//!   detected *per frame* and surfaced as a clean error to exactly the
//!   affected caller — the stream itself stays framed and alive.
//!
//! A version mismatch is detected after the whole frame was consumed (the
//! length prefix keeps the stream framed regardless of version), so the
//! transport can surface a clean [`WireError::BadVersion`] naming both
//! versions instead of desynchronizing.
//!
//! Payload bytes are produced by the hand-rolled [`Wire`] serializer the
//! envelope types implement (the workspace has no serde; the stand-in
//! crate is API-only). Primitives are little-endian, strings are
//! length-prefixed UTF-8.

use std::io::{Read, Write};

/// Protocol magic ("DL" with the high bits set).
pub const MAGIC: u16 = 0xD1FA;
/// Protocol version. v2 added the `trace_id`/`parent_span` header fields.
pub const VERSION: u8 = 2;
/// Bytes of header after the length prefix.
pub const HEADER_TAIL: usize = 40;
/// Upper bound on a frame's declared length: a corrupted or hostile
/// length prefix must not make the reader allocate unboundedly.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Round-trip request; a Reply with the same `corr` answers it.
    Call,
    /// Fire-and-forget request; never answered.
    Post,
    /// Answer to a Call. First payload byte is a status code
    /// ([`status`]); the response body follows only on success.
    Reply,
    /// The client end of `session` is gone: retire its server state.
    Hangup,
    /// Liveness probe; answered by a Pong with the same `corr`.
    Ping,
    /// Answer to a Ping.
    Pong,
}

impl FrameKind {
    fn code(self) -> u8 {
        match self {
            FrameKind::Call => 1,
            FrameKind::Post => 2,
            FrameKind::Reply => 3,
            FrameKind::Hangup => 4,
            FrameKind::Ping => 5,
            FrameKind::Pong => 6,
        }
    }

    fn from_code(code: u8) -> Option<FrameKind> {
        Some(match code {
            1 => FrameKind::Call,
            2 => FrameKind::Post,
            3 => FrameKind::Reply,
            4 => FrameKind::Hangup,
            5 => FrameKind::Ping,
            6 => FrameKind::Pong,
            _ => return None,
        })
    }
}

/// Status codes in the first byte of a Reply payload.
pub mod status {
    /// Success; the response body follows.
    pub const OK: u8 = 0;
    /// The server's run queue stayed full past the admission timeout.
    pub const OVERLOADED: u8 = 1;
    /// The serving agent went away before replying.
    pub const DISCONNECTED: u8 = 2;
    /// The server could not decode (or received corrupted) request bytes.
    pub const DECODE: u8 = 3;
}

/// Codec and framing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended mid-frame.
    Truncated,
    /// The magic bytes did not match — not our protocol.
    BadMagic(u16),
    /// Version mismatch: the peer framed a valid frame but speaks a
    /// different protocol revision. Carries both versions so the error
    /// shown to the operator names the skew exactly.
    BadVersion {
        /// Version the peer stamped on its frame.
        peer: u8,
        /// Version this end speaks ([`VERSION`]).
        ours: u8,
    },
    /// Unknown frame kind.
    BadKind(u8),
    /// Declared frame length exceeds [`MAX_FRAME`] (or is shorter than a
    /// header) — treated as stream corruption.
    BadLength(u32),
    /// Payload checksum mismatch: this frame is corrupt (the stream
    /// itself is still framed).
    Checksum,
    /// The payload bytes did not decode as the expected type.
    Decode(String),
    /// Socket-level I/O failure.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("stream ended mid-frame"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::BadVersion { peer, ours } => {
                write!(f, "wire version mismatch: peer speaks v{peer}, this end speaks v{ours}")
            }
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadLength(l) => write!(f, "bad frame length {l}"),
            WireError::Checksum => f.write_str("frame payload checksum mismatch"),
            WireError::Decode(m) => write!(f, "payload decode error: {m}"),
            WireError::Io(m) => write!(f, "socket error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Logical connection id within the socket.
    pub session: u64,
    /// Correlation id matching replies to callers (0 for one-way kinds).
    pub corr: u64,
    /// Trace id of the sender's current span context (0 = untraced).
    pub trace_id: u64,
    /// Span id of the sender's current span — the parent the receiving
    /// agent's spans should hang under (0 = untraced).
    pub parent_span: u64,
    /// Serialized message body.
    pub payload: Vec<u8>,
    /// The payload failed its checksum: header fields are trustworthy
    /// (framing survived), the body is not.
    pub corrupt: bool,
}

impl Frame {
    /// Build an untraced frame.
    pub fn new(kind: FrameKind, session: u64, corr: u64, payload: Vec<u8>) -> Frame {
        Frame { kind, session, corr, trace_id: 0, parent_span: 0, payload, corrupt: false }
    }

    /// Stamp a trace context onto the frame (builder style).
    pub fn traced(mut self, trace_id: u64, parent_span: u64) -> Frame {
        self.trace_id = trace_id;
        self.parent_span = parent_span;
        self
    }

    /// The trace context carried in the header, if any.
    pub fn trace(&self) -> Option<(u64, u64)> {
        (self.trace_id != 0).then_some((self.trace_id, self.parent_span))
    }
}

/// FNV-1a over the payload (cheap, order-sensitive, good enough to catch
/// injected corruption and torn writes).
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Encode `frame` into `out` (appends; does not clear).
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let len = (HEADER_TAIL + frame.payload.len()) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(frame.kind.code());
    out.extend_from_slice(&frame.session.to_le_bytes());
    out.extend_from_slice(&frame.corr.to_le_bytes());
    out.extend_from_slice(&frame.trace_id.to_le_bytes());
    out.extend_from_slice(&frame.parent_span.to_le_bytes());
    out.extend_from_slice(&checksum(&frame.payload).to_le_bytes());
    out.extend_from_slice(&frame.payload);
}

fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    eof_ok_at_start: bool,
) -> Result<bool, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok_at_start {
                    return Ok(false);
                }
                return Err(WireError::Truncated);
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(true)
}

/// Read one frame from the stream. `Ok(None)` is a clean EOF at a frame
/// boundary; EOF anywhere else is [`WireError::Truncated`]. A checksum
/// mismatch is *not* an error: the frame comes back with
/// [`Frame::corrupt`] set so the caller can fail just that message.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let mut len_buf = [0u8; 4];
    if !read_exact_or(r, &mut len_buf, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf);
    // The length floor is the *v1* header tail (24 bytes): an old-version
    // peer's frames must still be consumable whole so the version skew
    // surfaces as a clean BadVersion, not as length corruption.
    const MIN_HEADER_TAIL: u32 = 24;
    if !(MIN_HEADER_TAIL..=MAX_FRAME).contains(&len) {
        return Err(WireError::BadLength(len));
    }
    let mut rest = vec![0u8; len as usize];
    read_exact_or(r, &mut rest, false)?;
    let magic = u16::from_le_bytes([rest[0], rest[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if rest[2] != VERSION {
        // The frame is already consumed, so the stream stays framed; the
        // caller decides whether (and how loudly) to drop the peer.
        return Err(WireError::BadVersion { peer: rest[2], ours: VERSION });
    }
    if len < HEADER_TAIL as u32 {
        return Err(WireError::BadLength(len));
    }
    let kind = FrameKind::from_code(rest[3]).ok_or(WireError::BadKind(rest[3]))?;
    let session = u64::from_le_bytes(rest[4..12].try_into().unwrap());
    let corr = u64::from_le_bytes(rest[12..20].try_into().unwrap());
    let trace_id = u64::from_le_bytes(rest[20..28].try_into().unwrap());
    let parent_span = u64::from_le_bytes(rest[28..36].try_into().unwrap());
    let cksum = u32::from_le_bytes(rest[36..40].try_into().unwrap());
    let payload = rest.split_off(HEADER_TAIL);
    let corrupt = checksum(&payload) != cksum;
    Ok(Some(Frame { kind, session, corr, trace_id, parent_span, payload, corrupt }))
}

/// Write pre-encoded frame bytes to the stream.
pub fn write_bytes(w: &mut impl Write, bytes: &[u8]) -> Result<(), WireError> {
    w.write_all(bytes).map_err(|e| WireError::Io(e.to_string()))?;
    w.flush().map_err(|e| WireError::Io(e.to_string()))
}

// ---------------------------------------------------------------------
// Payload serializer
// ---------------------------------------------------------------------

/// Hand-rolled byte serializer for envelope payload types. Implemented by
/// the request/response enums that cross the wire (`DlfmRequest`,
/// `DlfmResponse`); the transport stays generic over them through
/// function pointers captured where these bounds hold.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Bounded cursor over a payload's bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Decode(format!(
                "need {n} bytes, {} remaining",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `bool`.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::Decode(format!("invalid UTF-8 string: {e}")))
    }
}

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u16` (little-endian).
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` (little-endian).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (little-endian).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` (little-endian).
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `bool` as one byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(frame: &Frame) -> Frame {
        let mut bytes = Vec::new();
        encode_frame(frame, &mut bytes);
        read_frame(&mut Cursor::new(bytes)).unwrap().unwrap()
    }

    #[test]
    fn frame_roundtrip_all_kinds() {
        for kind in [
            FrameKind::Call,
            FrameKind::Post,
            FrameKind::Reply,
            FrameKind::Hangup,
            FrameKind::Ping,
            FrameKind::Pong,
        ] {
            let f = Frame::new(kind, 7, 42, b"hello world".to_vec());
            let g = roundtrip(&f);
            assert_eq!(f, g);
            assert!(!g.corrupt);
        }
    }

    #[test]
    fn trace_context_rides_the_header() {
        let f = Frame::new(FrameKind::Call, 7, 42, b"body".to_vec()).traced(0xabcd, 0x1234);
        let g = roundtrip(&f);
        assert_eq!(g.trace(), Some((0xabcd, 0x1234)));
        assert_eq!(g, f);
        // Untraced frames decode to no context.
        let g = roundtrip(&Frame::new(FrameKind::Post, 1, 0, Vec::new()));
        assert_eq!(g.trace(), None);
    }

    #[test]
    fn frame_roundtrip_property_style() {
        // Deterministic pseudo-random payloads of many sizes, including
        // empty and larger-than-header bodies.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for i in 0..200usize {
            let len = (i * 37) % 5000;
            let mut payload = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                payload.push(x as u8);
            }
            let f = Frame::new(FrameKind::Call, x, x.rotate_left(7), payload);
            assert_eq!(roundtrip(&f), f, "payload len {len}");
        }
    }

    #[test]
    fn multiple_frames_stream_and_clean_eof() {
        let mut bytes = Vec::new();
        encode_frame(&Frame::new(FrameKind::Call, 1, 1, b"a".to_vec()), &mut bytes);
        encode_frame(&Frame::new(FrameKind::Reply, 1, 1, b"bb".to_vec()), &mut bytes);
        let mut cur = Cursor::new(bytes);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap().payload, b"a");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap().payload, b"bb");
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF at a frame boundary");
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut bytes = Vec::new();
        encode_frame(&Frame::new(FrameKind::Call, 1, 1, b"payload".to_vec()), &mut bytes);
        for cut in [1, 3, 5, 10, bytes.len() - 1] {
            let mut cur = Cursor::new(bytes[..cut].to_vec());
            assert_eq!(read_frame(&mut cur).unwrap_err(), WireError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAX_FRAME + 1);
        bytes.extend_from_slice(&[0u8; 64]);
        assert_eq!(
            read_frame(&mut Cursor::new(bytes)).unwrap_err(),
            WireError::BadLength(MAX_FRAME + 1)
        );
        // A length shorter than the header tail is equally corrupt.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 3);
        bytes.extend_from_slice(&[0u8; 64]);
        assert_eq!(read_frame(&mut Cursor::new(bytes)).unwrap_err(), WireError::BadLength(3));
    }

    #[test]
    fn corrupt_magic_and_version_rejected() {
        let mut bytes = Vec::new();
        encode_frame(&Frame::new(FrameKind::Call, 1, 1, Vec::new()), &mut bytes);
        let mut bad_magic = bytes.clone();
        bad_magic[4] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut Cursor::new(bad_magic)).unwrap_err(),
            WireError::BadMagic(_)
        ));
        let mut bad_ver = bytes.clone();
        bad_ver[6] = 99;
        assert_eq!(
            read_frame(&mut Cursor::new(bad_ver)).unwrap_err(),
            WireError::BadVersion { peer: 99, ours: VERSION }
        );
        let mut bad_kind = bytes;
        bad_kind[7] = 0;
        assert_eq!(read_frame(&mut Cursor::new(bad_kind)).unwrap_err(), WireError::BadKind(0));
    }

    /// A v1 peer's frame: 24-byte header tail (no trace fields), version
    /// byte 1. Build it by hand exactly as the old encoder did.
    fn encode_v1_frame(kind_code: u8, session: u64, corr: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&((24 + payload.len()) as u32).to_le_bytes());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(1); // v1
        out.push(kind_code);
        out.extend_from_slice(&session.to_le_bytes());
        out.extend_from_slice(&corr.to_le_bytes());
        out.extend_from_slice(&checksum(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn old_version_peer_fails_cleanly_and_keeps_the_stream_framed() {
        // Adversarial case: a v1 peer sends two frames — the first must
        // surface BadVersion naming both versions, *after* consuming the
        // whole frame, so the second (v2) frame still reads intact.
        let mut bytes = encode_v1_frame(1, 9, 1, b"old wine");
        // A v1 frame shorter than the v2 header tail (empty payload, len
        // 24 < 40) must hit the version check, not the length check.
        bytes.extend_from_slice(&encode_v1_frame(5, 9, 2, b""));
        encode_frame(&Frame::new(FrameKind::Call, 9, 3, b"new bottle".to_vec()), &mut bytes);
        let mut cur = Cursor::new(bytes);
        for _ in 0..2 {
            let err = read_frame(&mut cur).unwrap_err();
            assert_eq!(err, WireError::BadVersion { peer: 1, ours: VERSION });
            let msg = err.to_string();
            assert!(msg.contains("v1") && msg.contains("v2"), "error names both versions: {msg}");
        }
        let f = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(f.payload, b"new bottle", "stream stays framed across version-skewed frames");
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn payload_corruption_detected_per_frame() {
        let mut bytes = Vec::new();
        encode_frame(&Frame::new(FrameKind::Call, 3, 9, b"important".to_vec()), &mut bytes);
        encode_frame(&Frame::new(FrameKind::Call, 3, 10, b"next".to_vec()), &mut bytes);
        // Flip one payload byte of the first frame.
        let flip = 4 + HEADER_TAIL + 2;
        bytes[flip] ^= 0x40;
        let mut cur = Cursor::new(bytes);
        let f1 = read_frame(&mut cur).unwrap().unwrap();
        assert!(f1.corrupt, "corruption must be detected");
        assert_eq!((f1.session, f1.corr), (3, 9), "header fields survive payload corruption");
        // The stream stays framed: the next frame is intact.
        let f2 = read_frame(&mut cur).unwrap().unwrap();
        assert!(!f2.corrupt);
        assert_eq!(f2.payload, b"next");
    }

    #[test]
    fn primitive_codec_roundtrip() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u16(&mut out, 515);
        put_u32(&mut out, 70_000);
        put_u64(&mut out, u64::MAX - 3);
        put_i64(&mut out, -12345);
        put_bool(&mut out, true);
        put_str(&mut out, "héllo");
        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 515);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -12345);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.remaining(), 0);
        assert!(r.u8().is_err(), "reading past the end is a clean error");
    }

    #[test]
    fn reader_rejects_lying_string_length() {
        let mut out = Vec::new();
        put_u32(&mut out, 1000); // claims 1000 bytes, provides 2
        out.extend_from_slice(b"ab");
        let mut r = Reader::new(&out);
        assert!(matches!(r.str().unwrap_err(), WireError::Decode(_)));
    }
}
