//! Socket transport: TCP and Unix-domain backends for the RPC fabric.
//!
//! One socket carries many logical connections (sessions). Each side runs
//! exactly **one reader thread and one writer thread per socket** — 10k
//! sessions do not need 10k sockets or threads:
//!
//! * the **client multiplexer** ([`Mux`]) assigns a correlation id to every
//!   Call/Ping, parks the caller on a one-shot channel, and lets the reader
//!   thread route each Reply/Pong frame back by correlation id;
//! * the **server bridge** ([`serve_wire`]) decodes frames off the socket
//!   and feeds them into the existing in-process fabric — a per-session
//!   channel + `ServerConn` in dedicated mode, the shared run queue in
//!   pooled mode — so `serve`/`serve_pool` and every agent above them are
//!   transport-agnostic.
//!
//! Fault points (client-side writer, armed via `obs::fault`):
//! `rpc.wire.stall` delays a frame on the wire; `rpc.wire.corrupt` flips a
//! payload byte after the checksum is computed (the peer detects it per
//! frame and fails only that call); `rpc.wire.truncate` writes a partial
//! frame and drops the socket; `rpc.wire.reset` drops the socket without
//! writing. The last two kill the connection exactly like a network
//! partition: every parked caller gets `RpcError::Disconnected` and the
//! next `connect()` redials.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};

use crate::wire::{
    encode_frame, read_frame, status, Frame, FrameKind, Wire, WireError, HEADER_TAIL,
};
use crate::{
    Connector, ConnectorMode, Envelope, Payload, PoolStats, ReplyDest, ReplyTo, RpcError,
    ServerConn,
};

/// How long blocking loops sleep between shutdown-flag polls.
const POLL: Duration = Duration::from_millis(5);

/// Whether outgoing Call/Post frames carry the sender's trace context in
/// the v2 header fields. On by default; benches flip it off to measure
/// the propagation overhead (`e5`/`e12` wire-trace guard arm).
static WIRE_TRACE: AtomicBool = AtomicBool::new(true);

/// Enable or disable trace-context propagation on outgoing frames.
/// Returns the previous setting. Process-global.
pub fn set_wire_tracing(on: bool) -> bool {
    WIRE_TRACE.swap(on, Ordering::Relaxed)
}

/// Is trace-context propagation on outgoing frames enabled?
pub fn wire_tracing() -> bool {
    WIRE_TRACE.load(Ordering::Relaxed)
}
/// Depth of the per-socket writer queue (encoded frames).
const WRITER_QUEUE: usize = 1024;
/// Depth of a per-session request channel in dedicated mode. Buffered, not
/// a rendezvous: the paper's §4 send-blocks-until-receive semantics are a
/// property of the **in-process** backend only (see DESIGN.md).
const SESSION_QUEUE: usize = 256;

// ---------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------

/// A socket address the wire transport can bind or dial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireAddr {
    /// TCP `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for WireAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireAddr::Tcp(a) => write!(f, "tcp://{a}"),
            WireAddr::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

/// A parsed connection URL: the two socket schemes plus `inproc://name`,
/// which upper layers resolve against a registry of in-process connectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// `tcp://host:port`
    Tcp(String),
    /// `unix:///path/to.sock`
    Unix(PathBuf),
    /// `inproc://name` — an in-process fabric registered under `name`.
    Inproc(String),
}

impl Endpoint {
    /// Parse a `tcp://`, `unix://`, or `inproc://` URL.
    pub fn parse(url: &str) -> Result<Endpoint, RpcError> {
        if let Some(rest) = url.strip_prefix("tcp://") {
            if rest.is_empty() {
                return Err(RpcError::Wire(format!("empty tcp address in {url:?}")));
            }
            return Ok(Endpoint::Tcp(rest.to_string()));
        }
        if let Some(rest) = url.strip_prefix("unix://") {
            if rest.is_empty() {
                return Err(RpcError::Wire(format!("empty unix path in {url:?}")));
            }
            return Ok(Endpoint::Unix(PathBuf::from(rest)));
        }
        if let Some(rest) = url.strip_prefix("inproc://") {
            if rest.is_empty() {
                return Err(RpcError::Wire(format!("empty inproc name in {url:?}")));
            }
            return Ok(Endpoint::Inproc(rest.to_string()));
        }
        Err(RpcError::Wire(format!(
            "unsupported url {url:?} (expected tcp://, unix://, or inproc://)"
        )))
    }

    /// The socket address, if this endpoint is one.
    pub fn wire_addr(&self) -> Option<WireAddr> {
        match self {
            Endpoint::Tcp(a) => Some(WireAddr::Tcp(a.clone())),
            Endpoint::Unix(p) => Some(WireAddr::Unix(p.clone())),
            Endpoint::Inproc(_) => None,
        }
    }
}

// ---------------------------------------------------------------------
// Sockets
// ---------------------------------------------------------------------

/// A connected stream socket of either family.
pub enum WireSocket {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    Unix(UnixStream),
}

impl WireSocket {
    /// Dial `addr`.
    pub fn connect(addr: &WireAddr) -> Result<WireSocket, RpcError> {
        match addr {
            WireAddr::Tcp(a) => TcpStream::connect(a)
                .map(WireSocket::Tcp)
                .map_err(|e| RpcError::Wire(format!("dial {addr}: {e}"))),
            WireAddr::Unix(p) => UnixStream::connect(p)
                .map(WireSocket::Unix)
                .map_err(|e| RpcError::Wire(format!("dial {addr}: {e}"))),
        }
    }

    fn try_clone(&self) -> std::io::Result<WireSocket> {
        match self {
            WireSocket::Tcp(s) => s.try_clone().map(WireSocket::Tcp),
            WireSocket::Unix(s) => s.try_clone().map(WireSocket::Unix),
        }
    }

    /// Shut down both directions; unblocks any thread parked in a read.
    pub fn shutdown(&self) {
        match self {
            WireSocket::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            WireSocket::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for WireSocket {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            WireSocket::Tcp(s) => s.read(buf),
            WireSocket::Unix(s) => s.read(buf),
        }
    }
}

impl Write for WireSocket {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            WireSocket::Tcp(s) => s.write(buf),
            WireSocket::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            WireSocket::Tcp(s) => s.flush(),
            WireSocket::Unix(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------
// Wire instrumentation
// ---------------------------------------------------------------------

/// Byte- and frame-level instrumentation of one wire endpoint (a client
/// connector or a server bridge).
#[derive(Debug, Default)]
pub struct WireStats {
    /// Bytes written to the socket (counter).
    pub bytes_tx: AtomicU64,
    /// Bytes read off the socket (counter).
    pub bytes_rx: AtomicU64,
    /// Frames written (counter).
    pub frames_tx: AtomicU64,
    /// Frames read (counter).
    pub frames_rx: AtomicU64,
    /// Times a dead connection was redialed (counter; client side).
    pub reconnects: AtomicU64,
    /// Frames that failed checksum or payload decode (counter).
    pub decode_errors: AtomicU64,
    /// Frames rejected because the peer speaks a different wire version.
    pub version_mismatches: AtomicU64,
    /// Session hangups delivered over the wire (counter; server side).
    pub hangups: AtomicU64,
}

impl WireStats {
    fn frame_rx(&self, frame: &Frame) {
        self.bytes_rx.fetch_add((4 + HEADER_TAIL + frame.payload.len()) as u64, Ordering::Relaxed);
        self.frames_rx.fetch_add(1, Ordering::Relaxed);
    }

    /// Times a dead connection was redialed.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Frames that failed checksum or decode.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Relaxed)
    }

    /// Render the `rpc_wire_*` metric family into a registry.
    pub fn render(&self, r: &mut obs::Registry) {
        r.counter(
            "rpc_wire_bytes_tx_total",
            "Bytes written to wire transport sockets.",
            &[],
            self.bytes_tx.load(Ordering::Relaxed),
        );
        r.counter(
            "rpc_wire_bytes_rx_total",
            "Bytes read from wire transport sockets.",
            &[],
            self.bytes_rx.load(Ordering::Relaxed),
        );
        r.counter(
            "rpc_wire_frames_total",
            "Frames crossing the wire transport, by direction.",
            &[("dir", "tx")],
            self.frames_tx.load(Ordering::Relaxed),
        );
        r.counter(
            "rpc_wire_frames_total",
            "Frames crossing the wire transport, by direction.",
            &[("dir", "rx")],
            self.frames_rx.load(Ordering::Relaxed),
        );
        r.counter(
            "rpc_wire_reconnects_total",
            "Wire connections redialed after a disconnect.",
            &[],
            self.reconnects.load(Ordering::Relaxed),
        );
        r.counter(
            "rpc_wire_decode_errors_total",
            "Frames rejected by checksum or payload decode.",
            &[],
            self.decode_errors.load(Ordering::Relaxed),
        );
        r.counter(
            "rpc_wire_version_mismatch_total",
            "Frames rejected because the peer speaks a different wire version.",
            &[],
            self.version_mismatches.load(Ordering::Relaxed),
        );
        r.counter(
            "rpc_wire_hangups_total",
            "Session hangups delivered over the wire.",
            &[],
            self.hangups.load(Ordering::Relaxed),
        );
    }
}

// ---------------------------------------------------------------------
// Client multiplexer
// ---------------------------------------------------------------------

type PendingMap = Arc<Mutex<HashMap<u64, Sender<Result<Vec<u8>, RpcError>>>>>;

/// Client end of one socket: many sessions share it. Callers enqueue
/// encoded frames on the writer channel and park on a one-shot reply
/// channel keyed by correlation id; the reader thread routes each
/// Reply/Pong back by that id. When the socket dies, every parked caller
/// is failed with `Disconnected` — nobody hangs.
pub(crate) struct Mux {
    writer: Sender<Vec<u8>>,
    pending: PendingMap,
    corr: AtomicU64,
    dead: Arc<AtomicBool>,
    /// Why the connection died, when we know better than "disconnected"
    /// (e.g. a wire version mismatch). Surfaced to parked and later callers.
    death: Arc<Mutex<Option<RpcError>>>,
    sock: WireSocket,
}

impl Mux {
    /// Dial `addr` and start the reader/writer threads.
    pub(crate) fn dial(addr: &WireAddr, stats: Arc<WireStats>) -> Result<Arc<Mux>, RpcError> {
        let sock = WireSocket::connect(addr)?;
        let sock_w = sock.try_clone().map_err(|e| RpcError::Wire(format!("clone socket: {e}")))?;
        let sock_r = sock.try_clone().map_err(|e| RpcError::Wire(format!("clone socket: {e}")))?;
        let (wtx, wrx) = bounded::<Vec<u8>>(WRITER_QUEUE);
        let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
        let dead = Arc::new(AtomicBool::new(false));
        let death: Arc<Mutex<Option<RpcError>>> = Arc::new(Mutex::new(None));

        spawn_client_writer(sock_w, wrx, dead.clone(), stats.clone());
        spawn_client_reader(sock_r, pending.clone(), dead.clone(), death.clone(), stats.clone());

        Ok(Arc::new(Mux { writer: wtx, pending, corr: AtomicU64::new(0), dead, death, sock }))
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// The error callers should see for a dead connection: the recorded
    /// death reason if the reader left one, else plain `Disconnected`.
    fn death_error(&self) -> RpcError {
        self.death
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .unwrap_or(RpcError::Disconnected)
    }

    /// Stamp the caller's trace context onto an outgoing frame so the
    /// serving peer can parent its spans under ours (v2 header fields).
    fn stamp_trace(frame: Frame) -> Frame {
        if wire_tracing() {
            if let Some(c) = obs::trace::current_ctx() {
                return frame.traced(c.trace_id, c.span_id);
            }
        }
        frame
    }

    fn send_frame(&self, frame: &Frame) -> Result<(), RpcError> {
        let mut bytes = Vec::with_capacity(4 + HEADER_TAIL + frame.payload.len());
        encode_frame(frame, &mut bytes);
        self.writer.send(bytes).map_err(|_| RpcError::Disconnected)
    }

    /// Round trip: send a Call (or Ping) and park until the matching
    /// Reply (or Pong) arrives, the timeout fires, or the socket dies.
    pub(crate) fn call(
        &self,
        kind: FrameKind,
        session: u64,
        payload: Vec<u8>,
        timeout: Option<Duration>,
    ) -> Result<Vec<u8>, RpcError> {
        if self.is_dead() {
            return Err(self.death_error());
        }
        let corr = self.corr.fetch_add(1, Ordering::Relaxed) + 1;
        let (rtx, rrx) = bounded(1);
        self.pending.lock().unwrap_or_else(|e| e.into_inner()).insert(corr, rtx);
        if let Err(e) =
            self.send_frame(&Self::stamp_trace(Frame::new(kind, session, corr, payload)))
        {
            self.pending.lock().unwrap_or_else(|e2| e2.into_inner()).remove(&corr);
            return Err(e);
        }
        // The reader may have died between the insert and here, after it
        // drained `pending`: reclaim our entry so we never park forever.
        if self.is_dead()
            && self.pending.lock().unwrap_or_else(|e| e.into_inner()).remove(&corr).is_some()
        {
            return Err(self.death_error());
        }
        match timeout {
            None => rrx.recv().map_err(|_| RpcError::Disconnected)?,
            Some(t) => match rrx.recv_timeout(t) {
                Ok(r) => r,
                Err(RecvTimeoutError::Timeout) => {
                    self.pending.lock().unwrap_or_else(|e| e.into_inner()).remove(&corr);
                    Err(RpcError::Timeout)
                }
                Err(RecvTimeoutError::Disconnected) => Err(RpcError::Disconnected),
            },
        }
    }

    /// Fire-and-forget: enqueue a Post frame.
    pub(crate) fn post(&self, session: u64, payload: Vec<u8>) -> Result<(), RpcError> {
        if self.is_dead() {
            return Err(self.death_error());
        }
        self.send_frame(&Self::stamp_trace(Frame::new(FrameKind::Post, session, 0, payload)))
    }

    /// Tell the server this session's client is gone (best effort).
    pub(crate) fn hangup(&self, session: u64) {
        let _ = self.send_frame(&Frame::new(FrameKind::Hangup, session, 0, Vec::new()));
    }
}

impl Drop for Mux {
    fn drop(&mut self) {
        // Unblocks the reader (EOF) and lets the writer's poll loop see a
        // dead socket; both threads then exit on their own.
        self.dead.store(true, Ordering::Relaxed);
        self.sock.shutdown();
    }
}

/// Drain encoded frames onto the socket. This is where the client-side
/// `rpc.wire.*` faults bite — after the checksum is computed, exactly like
/// a misbehaving network.
fn spawn_client_writer(
    mut sock: WireSocket,
    wrx: Receiver<Vec<u8>>,
    dead: Arc<AtomicBool>,
    stats: Arc<WireStats>,
) {
    std::thread::spawn(move || loop {
        let mut bytes = match wrx.recv_timeout(POLL) {
            Ok(b) => b,
            Err(RecvTimeoutError::Timeout) => {
                if dead.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        if obs::fault::fire("rpc.wire.stall") {
            std::thread::sleep(Duration::from_millis(3));
        }
        if obs::fault::fire("rpc.wire.corrupt") && bytes.len() > 4 + HEADER_TAIL {
            let last = bytes.len() - 1;
            bytes[last] ^= 0x55;
        }
        if obs::fault::fire("rpc.wire.truncate") {
            let cut = (bytes.len() / 2).max(1);
            let _ = sock.write_all(&bytes[..cut]);
            let _ = sock.flush();
            sock.shutdown();
            return;
        }
        if obs::fault::fire("rpc.wire.reset") {
            sock.shutdown();
            return;
        }
        if sock.write_all(&bytes).and_then(|_| sock.flush()).is_err() {
            sock.shutdown();
            return;
        }
        stats.bytes_tx.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        stats.frames_tx.fetch_add(1, Ordering::Relaxed);
    });
}

/// Route Reply/Pong frames to parked callers; on any stream death, fail
/// every parked caller. A version-mismatched peer produces a specific
/// `RpcError::Wire` naming both versions instead of a bare `Disconnected`.
fn spawn_client_reader(
    mut sock: WireSocket,
    pending: PendingMap,
    dead: Arc<AtomicBool>,
    death: Arc<Mutex<Option<RpcError>>>,
    stats: Arc<WireStats>,
) {
    std::thread::spawn(move || {
        loop {
            match read_frame(&mut sock) {
                Ok(Some(frame)) => {
                    stats.frame_rx(&frame);
                    match frame.kind {
                        FrameKind::Reply | FrameKind::Pong => {
                            let waiter = pending
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .remove(&frame.corr);
                            if let Some(tx) = waiter {
                                let _ = tx.send(decode_reply(&frame, &stats));
                            }
                        }
                        // A server never sends other kinds; ignore.
                        _ => {}
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    if !matches!(e, WireError::Io(_)) {
                        stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    if let WireError::BadVersion { .. } = e {
                        stats.version_mismatches.fetch_add(1, Ordering::Relaxed);
                        let msg = e.to_string();
                        obs::warn!("rpc::wire", "dropping connection: {msg}");
                        *death.lock().unwrap_or_else(|p| p.into_inner()) =
                            Some(RpcError::Wire(msg));
                    }
                    break;
                }
            }
        }
        dead.store(true, Ordering::Relaxed);
        sock.shutdown();
        let reason = death
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .unwrap_or(RpcError::Disconnected);
        let drained: Vec<_> = {
            let mut p = pending.lock().unwrap_or_else(|e| e.into_inner());
            p.drain().map(|(_, tx)| tx).collect()
        };
        for tx in drained {
            let _ = tx.send(Err(reason.clone()));
        }
    });
}

/// Map a Reply/Pong frame to what the parked caller should see.
fn decode_reply(frame: &Frame, stats: &WireStats) -> Result<Vec<u8>, RpcError> {
    if frame.corrupt {
        stats.decode_errors.fetch_add(1, Ordering::Relaxed);
        return Err(RpcError::Wire("reply frame failed checksum".into()));
    }
    if frame.kind == FrameKind::Pong {
        return Ok(Vec::new());
    }
    match frame.payload.first().copied() {
        Some(status::OK) => Ok(frame.payload[1..].to_vec()),
        Some(status::OVERLOADED) => Err(RpcError::Overloaded),
        Some(status::DISCONNECTED) => Err(RpcError::Disconnected),
        Some(status::DECODE) => Err(RpcError::Wire("peer failed to decode the request".into())),
        _ => Err(RpcError::Wire("malformed reply status".into())),
    }
}

// ---------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------

/// A bound server socket of either family.
pub enum SocketListener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix listener plus the path to unlink on shutdown.
    Unix(UnixListener, PathBuf),
}

impl SocketListener {
    /// Bind `addr`. A pre-existing Unix socket file is removed first
    /// (stale from a crashed predecessor). TCP port 0 binds an ephemeral
    /// port; read the real one back with [`SocketListener::bound_addr`].
    pub fn bind(addr: &WireAddr) -> Result<SocketListener, RpcError> {
        match addr {
            WireAddr::Tcp(a) => {
                let l = TcpListener::bind(a)
                    .map_err(|e| RpcError::Wire(format!("bind {addr}: {e}")))?;
                Ok(SocketListener::Tcp(l))
            }
            WireAddr::Unix(p) => {
                let _ = std::fs::remove_file(p);
                if let Some(dir) = p.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                let l = UnixListener::bind(p)
                    .map_err(|e| RpcError::Wire(format!("bind {addr}: {e}")))?;
                Ok(SocketListener::Unix(l, p.clone()))
            }
        }
    }

    /// The address actually bound (resolves TCP port 0).
    pub fn bound_addr(&self) -> WireAddr {
        match self {
            SocketListener::Tcp(l) => {
                WireAddr::Tcp(l.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into()))
            }
            SocketListener::Unix(_, p) => WireAddr::Unix(p.clone()),
        }
    }

    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            SocketListener::Tcp(l) => l.set_nonblocking(true),
            SocketListener::Unix(l, _) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> std::io::Result<WireSocket> {
        match self {
            SocketListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(WireSocket::Tcp(s))
            }
            SocketListener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(WireSocket::Unix(s))
            }
        }
    }
}

/// Where the server bridge pushes decoded requests: the accept channel of
/// a dedicated fabric or the shared run queue of a pooled one.
enum ServerSink<Req, Resp> {
    Dedicated(Sender<ServerConn<Req, Resp>>),
    Pooled { tx: Sender<Envelope<Req, Resp>>, pool: Arc<PoolStats>, admission: Duration },
}

impl<Req, Resp> Clone for ServerSink<Req, Resp> {
    fn clone(&self) -> Self {
        match self {
            ServerSink::Dedicated(tx) => ServerSink::Dedicated(tx.clone()),
            ServerSink::Pooled { tx, pool, admission } => {
                ServerSink::Pooled { tx: tx.clone(), pool: pool.clone(), admission: *admission }
            }
        }
    }
}

/// Handle to a running wire bridge: the accept loop plus one reader/writer
/// thread pair per live socket. Dropping (or [`WireServer::shutdown`])
/// closes every socket, hangs up every wire session, and joins all
/// threads.
pub struct WireServer {
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    socks: Arc<Mutex<Vec<WireSocket>>>,
    stats: Arc<WireStats>,
    bound: WireAddr,
    unlink: Option<PathBuf>,
}

impl WireServer {
    /// The address the bridge is serving on.
    pub fn bound_addr(&self) -> &WireAddr {
        &self.bound
    }

    /// Server-side wire instrumentation, shared across all sockets.
    pub fn wire_stats(&self) -> &Arc<WireStats> {
        &self.stats
    }

    /// Stop accepting, sever every live socket, and join all threads.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        {
            let socks = self.socks.lock().unwrap_or_else(|e| e.into_inner());
            for s in socks.iter() {
                s.shutdown();
            }
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let drained: Vec<JoinHandle<()>> = {
            let mut t = self.conn_threads.lock().unwrap_or_else(|e| e.into_inner());
            t.drain(..).collect()
        };
        for h in drained {
            let _ = h.join();
        }
        if let Some(p) = self.unlink.take() {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bridge a bound socket listener onto an in-process fabric: frames
/// arriving on accepted sockets become envelopes on `connector`'s fabric,
/// and agent replies flow back as Reply frames. The fabric's own server
/// loop (`serve` or `serve_pool`) must be running as usual — it cannot
/// tell wire sessions from local ones.
///
/// Panics if `connector` is itself a remote (wire) connector: a bridge
/// needs the server end of a local fabric.
pub fn serve_wire<Req, Resp>(
    listener: SocketListener,
    connector: &Connector<Req, Resp>,
) -> WireServer
where
    Req: Wire + Send + 'static,
    Resp: Wire + Send + 'static,
{
    let sink = match &connector.mode {
        ConnectorMode::Dedicated(tx) => ServerSink::Dedicated(tx.clone()),
        ConnectorMode::Pooled { tx, pool, admission_timeout } => {
            ServerSink::Pooled { tx: tx.clone(), pool: pool.clone(), admission: *admission_timeout }
        }
        ConnectorMode::Remote { .. } => {
            panic!("serve_wire needs a local fabric connector, not a remote one")
        }
    };
    let bound = listener.bound_addr();
    let unlink = match &listener {
        SocketListener::Unix(_, p) => Some(p.clone()),
        SocketListener::Tcp(_) => None,
    };
    let shutdown = Arc::new(AtomicBool::new(false));
    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let socks: Arc<Mutex<Vec<WireSocket>>> = Arc::new(Mutex::new(Vec::new()));
    let stats = Arc::new(WireStats::default());
    let rpc_stats = connector.stats.clone();
    let sessions = connector.sessions.clone();

    let sd = shutdown.clone();
    let th = conn_threads.clone();
    let sk = socks.clone();
    let st = stats.clone();
    let _ = listener.set_nonblocking();
    let accept_thread = std::thread::spawn(move || {
        while !sd.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok(sock) => {
                    let (Ok(r_sock), Ok(w_sock)) = (sock.try_clone(), sock.try_clone()) else {
                        continue;
                    };
                    sk.lock().unwrap_or_else(|e| e.into_inner()).push(sock);
                    let (wtx, wrx) = bounded::<Vec<u8>>(WRITER_QUEUE);
                    let writer = spawn_server_writer(w_sock, wrx, sd.clone(), st.clone());
                    let reader = spawn_server_reader(
                        r_sock,
                        wtx,
                        sink.clone(),
                        sessions.clone(),
                        rpc_stats.clone(),
                        st.clone(),
                    );
                    let mut t = th.lock().unwrap_or_else(|e| e.into_inner());
                    t.push(writer);
                    t.push(reader);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(_) => break,
            }
        }
    });

    WireServer {
        shutdown,
        accept_thread: Some(accept_thread),
        conn_threads,
        socks,
        stats,
        bound,
        unlink,
    }
}

/// Server writer: drain encoded reply frames onto the socket. No fault
/// injection here — the client writer models the lossy network.
fn spawn_server_writer(
    mut sock: WireSocket,
    wrx: Receiver<Vec<u8>>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<WireStats>,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        match wrx.recv_timeout(POLL) {
            Ok(bytes) => {
                if sock.write_all(&bytes).and_then(|_| sock.flush()).is_err() {
                    sock.shutdown();
                    return;
                }
                stats.bytes_tx.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                stats.frames_tx.fetch_add(1, Ordering::Relaxed);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    })
}

/// One live session behind a socket: its server-local fabric id, plus the
/// per-session request channel in dedicated mode (dropping it closes the
/// channel, which is how the child agent learns the client is gone).
struct WireSession<Req, Resp> {
    local: u64,
    dedicated_tx: Option<Sender<Envelope<Req, Resp>>>,
}

fn reply_frame(session: u64, corr: u64, payload: Vec<u8>) -> Vec<u8> {
    let frame = Frame::new(FrameKind::Reply, session, corr, payload);
    let mut bytes = Vec::with_capacity(4 + HEADER_TAIL + frame.payload.len());
    encode_frame(&frame, &mut bytes);
    bytes
}

/// Server reader: decode frames, map wire sessions to server-local fabric
/// sessions, and push envelopes into the fabric. On socket death every
/// live session is hung up so its server-side state is retired (open
/// transactions roll back) — a dropped client never leaks an agent.
fn spawn_server_reader<Req, Resp>(
    mut sock: WireSocket,
    wtx: Sender<Vec<u8>>,
    sink: ServerSink<Req, Resp>,
    session_ids: Arc<AtomicU64>,
    rpc_stats: Arc<crate::RpcStats>,
    stats: Arc<WireStats>,
) -> JoinHandle<()>
where
    Req: Wire + Send + 'static,
    Resp: Wire + Send + 'static,
{
    std::thread::spawn(move || {
        let mut sessions: HashMap<u64, WireSession<Req, Resp>> = HashMap::new();
        loop {
            let frame = match read_frame(&mut sock) {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(e) => {
                    if !matches!(e, WireError::Io(_)) {
                        stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    if let WireError::BadVersion { .. } = e {
                        stats.version_mismatches.fetch_add(1, Ordering::Relaxed);
                        obs::warn!("rpc::wire", "dropping connection: {e}");
                    }
                    break;
                }
            };
            stats.frame_rx(&frame);
            match frame.kind {
                FrameKind::Ping => {
                    let pong = Frame::new(FrameKind::Pong, frame.session, frame.corr, Vec::new());
                    let mut bytes = Vec::new();
                    encode_frame(&pong, &mut bytes);
                    let _ = wtx.send(bytes);
                }
                FrameKind::Hangup => {
                    if let Some(sess) = sessions.remove(&frame.session) {
                        hangup_session(&sink, sess);
                        stats.hangups.fetch_add(1, Ordering::Relaxed);
                    }
                }
                FrameKind::Call | FrameKind::Post => {
                    let is_call = frame.kind == FrameKind::Call;
                    if is_call {
                        rpc_stats.calls.fetch_add(1, Ordering::Relaxed);
                    } else {
                        rpc_stats.posts.fetch_add(1, Ordering::Relaxed);
                    }
                    if frame.corrupt {
                        stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                        if is_call {
                            let _ = wtx.send(reply_frame(
                                frame.session,
                                frame.corr,
                                vec![status::DECODE],
                            ));
                        }
                        continue;
                    }
                    let req = match crate::decode_val::<Req>(&frame.payload) {
                        Ok(r) => r,
                        Err(_) => {
                            stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                            if is_call {
                                let _ = wtx.send(reply_frame(
                                    frame.session,
                                    frame.corr,
                                    vec![status::DECODE],
                                ));
                            }
                            continue;
                        }
                    };
                    let reply = if is_call {
                        ReplyTo(Some(ReplyDest::Wire {
                            writer: wtx.clone(),
                            session: frame.session,
                            corr: frame.corr,
                            encode: crate::encode_val::<Resp>,
                        }))
                    } else {
                        ReplyTo(None)
                    };
                    let ctx = frame
                        .trace()
                        .map(|(trace_id, span_id)| obs::trace::TraceCtx { trace_id, span_id });
                    deliver(
                        &sink,
                        &mut sessions,
                        &session_ids,
                        frame.session,
                        req,
                        reply,
                        ctx,
                        &wtx,
                    );
                }
                // Clients never send these; ignore.
                FrameKind::Reply | FrameKind::Pong => {}
            }
        }
        // Socket gone: hang up everything this socket was carrying.
        for (_, sess) in sessions.drain() {
            hangup_session(&sink, sess);
            stats.hangups.fetch_add(1, Ordering::Relaxed);
        }
        sock.shutdown();
    })
}

/// Deliver one decoded request into the fabric, creating the session's
/// server-side identity on first sight. `ctx` is the trace context the
/// client stamped on the frame; the fabric installs it on the handling
/// agent thread so remote spans parent under the caller's span.
#[allow(clippy::too_many_arguments)]
fn deliver<Req, Resp>(
    sink: &ServerSink<Req, Resp>,
    sessions: &mut HashMap<u64, WireSession<Req, Resp>>,
    session_ids: &Arc<AtomicU64>,
    wire_session: u64,
    req: Req,
    reply: ReplyTo<Resp>,
    ctx: Option<obs::trace::TraceCtx>,
    wtx: &Sender<Vec<u8>>,
) where
    Req: Send + 'static,
    Resp: Send + 'static,
{
    let corr = reply_corr(&reply);
    let sess = match sessions.get(&wire_session) {
        Some(s) => s,
        None => {
            let local = session_ids.fetch_add(1, Ordering::Relaxed) + 1;
            let dedicated_tx = match sink {
                ServerSink::Dedicated(accept) => {
                    let (tx, rx) = bounded(SESSION_QUEUE);
                    if accept.send(ServerConn { rx }).is_err() {
                        // The fabric's main daemon is gone.
                        fail_reply(reply, wire_session, corr, wtx, status::DISCONNECTED);
                        return;
                    }
                    Some(tx)
                }
                ServerSink::Pooled { .. } => None,
            };
            sessions.insert(wire_session, WireSession { local, dedicated_tx });
            sessions.get(&wire_session).unwrap()
        }
    };
    let env = Envelope { payload: Payload::Request(req), reply, ctx, session: sess.local };
    match sink {
        ServerSink::Dedicated(_) => {
            let tx = sess.dedicated_tx.as_ref().expect("dedicated session has a channel");
            if let Err(e) = tx.send(env) {
                // Agent already exited; fail the call rather than hang it.
                let crossbeam::channel::SendError(env) = e;
                fail_reply(env.reply, wire_session, corr, wtx, status::DISCONNECTED);
                sessions.remove(&wire_session);
            }
        }
        ServerSink::Pooled { tx, pool, admission } => match tx.send_timeout(env, *admission) {
            Ok(()) => {}
            Err(crossbeam::channel::SendTimeoutError::Timeout(env)) => {
                pool.rejects.fetch_add(1, Ordering::Relaxed);
                obs::journal::record(obs::journal::JournalKind::PoolReject, 0, || {
                    "admission reject: run queue full (wire bridge)".to_string()
                });
                fail_reply(env.reply, wire_session, corr, wtx, status::OVERLOADED);
            }
            Err(crossbeam::channel::SendTimeoutError::Disconnected(env)) => {
                fail_reply(env.reply, wire_session, corr, wtx, status::DISCONNECTED);
            }
        },
    }
}

fn reply_corr<Resp>(reply: &ReplyTo<Resp>) -> u64 {
    match &reply.0 {
        Some(ReplyDest::Wire { corr, .. }) => *corr,
        _ => 0,
    }
}

/// Consume a reply destination with an error status instead of letting its
/// drop path send the generic Disconnected.
fn fail_reply<Resp>(
    mut reply: ReplyTo<Resp>,
    session: u64,
    corr: u64,
    wtx: &Sender<Vec<u8>>,
    code: u8,
) {
    if reply.0.take().is_some() && code != 0 {
        let _ = wtx.send(reply_frame(session, corr, vec![code]));
    }
}

/// Retire one session: dedicated mode drops the per-session channel (the
/// child agent's receive fails, its loop exits, and its state — open
/// transaction included — is torn down); pooled mode sends an explicit
/// Hangup envelope so a worker retires the session's table entry.
fn hangup_session<Req, Resp>(sink: &ServerSink<Req, Resp>, sess: WireSession<Req, Resp>) {
    match sink {
        ServerSink::Dedicated(_) => drop(sess.dedicated_tx),
        ServerSink::Pooled { tx, admission, .. } => {
            let env = Envelope {
                payload: Payload::Hangup,
                reply: ReplyTo(None),
                ctx: None,
                session: sess.local,
            };
            let _ = tx.send_timeout(env, *admission);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{put_u32, Reader};
    use crate::{fabric, pool_fabric, serve, serve_pool, wire_connector, PoolEvent, ReplySlot};
    use std::sync::atomic::AtomicI64;

    impl Wire for i32 {
        fn encode(&self, out: &mut Vec<u8>) {
            put_u32(out, *self as u32)
        }
        fn decode(r: &mut Reader<'_>) -> Result<i32, WireError> {
            Ok(r.u32()? as i32)
        }
    }

    /// `obs::fault` is process-global: a one-shot trigger armed by one
    /// test can be consumed by another test's writer thread. Every test
    /// that moves wire traffic takes this lock.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn unique_unix_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("dlrpc-{tag}-{}-{n}.sock", std::process::id()))
    }

    /// Stand up a dedicated echo server bridged onto `addr`; returns what a
    /// test needs plus the guards keeping it alive.
    fn echo_server(addr: &WireAddr) -> (WireAddr, crate::ServerHandle, WireServer) {
        let (listener, connector) = fabric::<i32, i32>();
        let handle = serve(listener, || |req: i32, slot: ReplySlot<i32>| slot.send(req * 2));
        let sock = SocketListener::bind(addr).unwrap();
        let bound = sock.bound_addr();
        let bridge = serve_wire(sock, &connector);
        (bound, handle, bridge)
    }

    #[test]
    fn tcp_call_roundtrip() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let (addr, _srv, _bridge) = echo_server(&WireAddr::Tcp("127.0.0.1:0".into()));
        let remote = wire_connector::<i32, i32>(addr);
        let conn = remote.connect().unwrap();
        assert_eq!(conn.call(21).unwrap(), 42);
        assert_eq!(conn.call_timeout(5, Duration::from_secs(5)).unwrap(), 10);
        assert!(conn.is_wire());
        conn.ping(Duration::from_secs(2)).unwrap();
    }

    #[test]
    fn unix_call_roundtrip_many_sessions_one_socket() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let path = unique_unix_path("echo");
        let (addr, _srv, bridge) = echo_server(&WireAddr::Unix(path.clone()));
        let remote = wire_connector::<i32, i32>(addr);
        // Many sessions, one socket: each connection gets its own dedicated
        // agent server-side, all multiplexed over a single socket pair.
        let conns: Vec<_> = (0..32).map(|_| remote.connect().unwrap()).collect();
        let mut joins = Vec::new();
        for (i, conn) in conns.into_iter().enumerate() {
            joins.push(std::thread::spawn(move || {
                for k in 0..20 {
                    let v = (i * 100 + k) as i32;
                    assert_eq!(conn.call(v).unwrap(), v * 2);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let stats = remote.wire_stats().unwrap();
        assert!(stats.frames_tx.load(Ordering::Relaxed) >= 640);
        assert!(bridge.wire_stats().frames_rx.load(Ordering::Relaxed) >= 640);
        drop(bridge);
        assert!(!path.exists(), "unix socket file unlinked on shutdown");
    }

    #[test]
    fn wire_client_drop_releases_dedicated_agent() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        struct Live(Arc<AtomicI64>);
        impl Drop for Live {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let live = Arc::new(AtomicI64::new(0));
        let (listener, connector) = fabric::<i32, i32>();
        let l = live.clone();
        let _srv = serve(listener, move || {
            l.fetch_add(1, Ordering::SeqCst);
            let guard = Live(l.clone());
            move |req: i32, slot: ReplySlot<i32>| {
                let _ = &guard;
                slot.send(req)
            }
        });
        let sock = SocketListener::bind(&WireAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let bound = sock.bound_addr();
        let bridge = serve_wire(sock, &connector);
        let remote = wire_connector::<i32, i32>(bound);
        let conn = remote.connect().unwrap();
        assert_eq!(conn.call(7).unwrap(), 7);
        assert_eq!(live.load(Ordering::SeqCst), 1);
        // Dropping the wire client sends a Hangup frame; the bridge drops
        // the per-session channel and the child agent exits.
        drop(conn);
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while live.load(Ordering::SeqCst) != 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(live.load(Ordering::SeqCst), 0, "agent must exit after wire hangup");
        assert!(bridge.wire_stats().hangups.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn wire_pooled_roundtrip_and_socket_death_hangs_up_sessions() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let (listener, connector) = pool_fabric::<i32, i32>(64, Duration::from_millis(200));
        let pool = listener.pool_stats().clone();
        let _srv = serve_pool(listener, 2, || {
            |ev: PoolEvent<i32>, slot: ReplySlot<i32>| {
                if let PoolEvent::Request { req, .. } = ev {
                    slot.send(req + 1)
                }
            }
        });
        let sock = SocketListener::bind(&WireAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let bound = sock.bound_addr();
        let _bridge = serve_wire(sock, &connector);
        let remote = wire_connector::<i32, i32>(bound);
        {
            let c1 = remote.connect().unwrap();
            let c2 = remote.connect().unwrap();
            assert_eq!(c1.call(1).unwrap(), 2);
            assert_eq!(c2.call(10).unwrap(), 11);
            // Dropping the *connector's* mux (all conns + remote) severs the
            // socket; the server reader hangs up both live sessions.
            drop(c1);
            drop(c2);
        }
        drop(remote);
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while pool.hangups() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(pool.hangups() >= 2, "server must retire sessions when the socket dies");
    }

    #[test]
    fn garbage_to_server_does_not_kill_the_listener() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let (addr, _srv, bridge) = echo_server(&WireAddr::Tcp("127.0.0.1:0".into()));
        let WireAddr::Tcp(tcp) = &addr else { unreachable!() };
        // A rogue peer spews garbage: the bridge must drop that socket and
        // keep serving everyone else.
        {
            let mut rogue = TcpStream::connect(tcp).unwrap();
            rogue.write_all(b"GET / HTTP/1.1\r\nHost: nope\r\n\r\n").unwrap();
            let mut buf = [0u8; 64];
            let _ = rogue.read(&mut buf); // server closes on us
        }
        let remote = wire_connector::<i32, i32>(addr);
        let conn = remote.connect().unwrap();
        assert_eq!(conn.call(4).unwrap(), 8, "healthy clients unaffected by a rogue peer");
        assert!(bridge.wire_stats().decode_errors.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn oversized_frame_to_server_is_rejected() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let (addr, _srv, _bridge) = echo_server(&WireAddr::Tcp("127.0.0.1:0".into()));
        let WireAddr::Tcp(tcp) = &addr else { unreachable!() };
        let mut rogue = TcpStream::connect(tcp).unwrap();
        let mut bytes = Vec::new();
        put_u32(&mut bytes, crate::wire::MAX_FRAME + 7);
        bytes.extend_from_slice(&[0u8; 128]);
        rogue.write_all(&bytes).unwrap();
        let mut buf = [0u8; 16];
        // The server must close the connection (read returns 0/err), not
        // allocate the claimed 16MiB+ or hang.
        rogue.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert!(matches!(rogue.read(&mut buf), Ok(0) | Err(_)));
    }

    #[test]
    fn garbage_from_server_fails_calls_cleanly() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        // A fake "server" that answers every connection with garbage bytes:
        // parked callers must get a clean error, never a hang or a panic.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tcp = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming().take(2) {
                let mut s = stream.unwrap();
                let mut buf = [0u8; 256];
                let _ = s.read(&mut buf); // swallow the Call frame
                let _ = s.write_all(b"\xff\xfe\xfd\xfc not a frame at all");
                // Keep the socket open a moment so the client parses the
                // garbage rather than seeing an instant EOF.
                std::thread::sleep(Duration::from_millis(100));
            }
        });
        let remote = wire_connector::<i32, i32>(WireAddr::Tcp(tcp));
        let conn = remote.connect().unwrap();
        let err = conn.call_timeout(1, Duration::from_secs(5)).unwrap_err();
        assert!(
            matches!(err, RpcError::Disconnected | RpcError::Wire(_)),
            "garbage reply must surface as a clean error, got {err:?}"
        );
        let stats = remote.wire_stats().unwrap();
        assert!(stats.decode_errors() >= 1);
    }

    #[test]
    fn mid_frame_disconnect_fails_parked_caller() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        // Fake server sends *half* a frame then drops the socket: the
        // parked caller must observe Disconnected promptly.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tcp = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 256];
            let _ = s.read(&mut buf);
            // A frame that claims 100 bytes but delivers only the header.
            let mut partial = Vec::new();
            put_u32(&mut partial, 100);
            partial.extend_from_slice(&crate::wire::MAGIC.to_le_bytes());
            partial.push(crate::wire::VERSION);
            let _ = s.write_all(&partial);
            // drop(s): mid-frame EOF
        });
        let remote = wire_connector::<i32, i32>(WireAddr::Tcp(tcp));
        let conn = remote.connect().unwrap();
        let started = std::time::Instant::now();
        let err = conn.call_timeout(1, Duration::from_secs(10)).unwrap_err();
        assert_eq!(err, RpcError::Disconnected);
        assert!(started.elapsed() < Duration::from_secs(5), "must fail fast, not time out");
    }

    #[test]
    fn reconnect_after_server_restart() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let path = unique_unix_path("reconnect");
        let addr = WireAddr::Unix(path.clone());
        let (listener, connector) = fabric::<i32, i32>();
        let _srv = serve(listener, || |req: i32, slot: ReplySlot<i32>| slot.send(req * 2));
        let mut bridge = serve_wire(SocketListener::bind(&addr).unwrap(), &connector);
        let remote = wire_connector::<i32, i32>(addr.clone());
        let conn = remote.connect().unwrap();
        assert_eq!(conn.call(1).unwrap(), 2);
        // Server bridge goes away: in-flight endpoint dies...
        bridge.shutdown();
        assert!(conn.call(2).is_err());
        // ...and comes back; a fresh connect() redials transparently.
        let _bridge2 = serve_wire(SocketListener::bind(&addr).unwrap(), &connector);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut ok = false;
        while std::time::Instant::now() < deadline {
            if let Ok(c) = remote.connect() {
                if c.call(3) == Ok(6) {
                    ok = true;
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(ok, "reconnect must succeed once the server is back");
        assert!(remote.wire_stats().unwrap().reconnects() >= 1);
    }

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("tcp://127.0.0.1:99").unwrap(),
            Endpoint::Tcp("127.0.0.1:99".into())
        );
        assert_eq!(
            Endpoint::parse("unix:///tmp/x.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(Endpoint::parse("inproc://dlfm1").unwrap(), Endpoint::Inproc("dlfm1".into()));
        assert!(Endpoint::parse("http://nope").is_err());
        assert!(Endpoint::parse("tcp://").is_err());
        assert!(matches!(Endpoint::parse("bogus"), Err(RpcError::Wire(_))));
    }

    #[test]
    fn wire_fault_reset_and_truncate_sever_cleanly() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let (addr, _srv, _bridge) = echo_server(&WireAddr::Tcp("127.0.0.1:0".into()));
        let remote = wire_connector::<i32, i32>(addr);
        let conn = remote.connect().unwrap();
        assert_eq!(conn.call(1).unwrap(), 2);
        // Arm a one-shot reset: the next frame never hits the wire and the
        // socket drops; the caller gets a clean error.
        let g =
            obs::fault::install_guarded(1, &[("rpc.wire.reset", obs::fault::Trigger::Times(1))]);
        let err = conn.call_timeout(2, Duration::from_secs(5)).unwrap_err();
        assert!(matches!(err, RpcError::Disconnected | RpcError::Timeout), "got {err:?}");
        drop(g);
        // The connector redials on the next connect.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut ok = false;
        while std::time::Instant::now() < deadline {
            if let Ok(c) = remote.connect() {
                if c.call(5) == Ok(10) {
                    ok = true;
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(ok, "redial after injected reset");

        // Corruption: the frame arrives, fails its checksum, and exactly
        // that call fails; the session and socket survive.
        let conn = remote.connect().unwrap();
        // Let the previous session's queued Hangup frame drain first so the
        // one-shot trigger bites our Call frame, not bookkeeping traffic.
        std::thread::sleep(Duration::from_millis(50));
        let g =
            obs::fault::install_guarded(1, &[("rpc.wire.corrupt", obs::fault::Trigger::Times(1))]);
        let err = conn.call_timeout(3, Duration::from_secs(5)).unwrap_err();
        drop(g);
        assert!(matches!(err, RpcError::Wire(_)), "corrupt frame must fail the call, got {err:?}");
        assert_eq!(conn.call(4).unwrap(), 8, "stream survives a corrupt frame");
    }

    #[test]
    fn trace_ctx_rides_the_wire_to_the_agent_thread() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let seen: Arc<Mutex<Vec<Option<obs::TraceCtx>>>> = Arc::new(Mutex::new(Vec::new()));
        let (listener, connector) = fabric::<i32, i32>();
        let s = seen.clone();
        let _srv = serve(listener, move || {
            let s = s.clone();
            move |req: i32, slot: ReplySlot<i32>| {
                s.lock().unwrap().push(obs::current_ctx());
                slot.send(req)
            }
        });
        let sock = SocketListener::bind(&WireAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let bound = sock.bound_addr();
        let _bridge = serve_wire(sock, &connector);
        let remote = wire_connector::<i32, i32>(bound);
        let conn = remote.connect().unwrap();

        // 1: caller outside any host span — conn.call's own Rpc span roots
        // a fresh trace, and that context crosses the wire.
        assert_eq!(conn.call(1).unwrap(), 1);

        // 2: traced caller — the remote agent joins the caller's trace.
        let root = obs::span_root(obs::Layer::Host, "wire_test_stmt");
        let root_ctx = root.ctx();
        assert_eq!(conn.call(2).unwrap(), 2);

        // 3: propagation disabled — same caller span, nothing crosses.
        let prev = set_wire_tracing(false);
        assert_eq!(conn.call(3).unwrap(), 3);
        set_wire_tracing(prev);
        drop(root);

        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 3);
        let fresh = seen[0].expect("a wire call always carries its Rpc span's context");
        assert_ne!(fresh.trace_id, root_ctx.trace_id, "no host span: a fresh trace is rooted");
        let ctx = seen[1].expect("traced call must install a context on the agent thread");
        assert_eq!(ctx.trace_id, root_ctx.trace_id, "remote spans share the host trace id");
        assert_ne!(ctx.span_id, 0);
        assert!(seen[2].is_none(), "disabled propagation must not leak a context");
    }

    #[test]
    fn version_mismatched_peer_fails_calls_with_both_versions_named() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        // A fake server that answers with a well-formed frame from wire
        // version 1 (24-byte header tail, no trace fields).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tcp = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 256];
            let _ = s.read(&mut buf); // swallow the Call frame
            let payload = [status::OK, 0, 0, 0, 0];
            let mut tail = Vec::new();
            tail.extend_from_slice(&crate::wire::MAGIC.to_le_bytes());
            tail.push(1); // old wire version
            tail.push(3); // FrameKind::Reply
            tail.extend_from_slice(&1u64.to_le_bytes()); // session
            tail.extend_from_slice(&1u64.to_le_bytes()); // corr
            tail.extend_from_slice(&crate::wire::checksum(&payload).to_le_bytes());
            tail.extend_from_slice(&payload);
            let mut bytes = Vec::new();
            put_u32(&mut bytes, tail.len() as u32);
            bytes.extend_from_slice(&tail);
            let _ = s.write_all(&bytes);
            // Keep the socket open so the client parses the frame rather
            // than seeing an instant EOF.
            std::thread::sleep(Duration::from_millis(200));
        });
        let remote = wire_connector::<i32, i32>(WireAddr::Tcp(tcp));
        let conn = remote.connect().unwrap();
        let err = conn.call_timeout(1, Duration::from_secs(5)).unwrap_err();
        let RpcError::Wire(msg) = &err else { panic!("want RpcError::Wire, got {err:?}") };
        assert!(msg.contains("v1") && msg.contains("v2"), "must name both versions: {msg}");
        // Subsequent calls on the dead connection report the same reason,
        // not a bare Disconnected.
        let err2 = conn.call_timeout(2, Duration::from_secs(1)).unwrap_err();
        assert!(matches!(err2, RpcError::Wire(m) if m.contains("version mismatch")));
        assert!(remote.wire_stats().unwrap().version_mismatches.load(Ordering::Relaxed) >= 1);
    }
}
