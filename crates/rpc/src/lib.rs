//! # dlrpc — the agent connection fabric
//!
//! Models the remote-procedure-call mechanism between host-database agents
//! and DLFM child agents (paper §2, §3.5). The crate splits into a
//! **protocol core** — the `Listener`/`Connector`/`ClientConn`/`ServerConn`
//! surface plus two server modes — and pluggable **transports**:
//!
//! * **in-process** (the default; [`fabric`]/[`pool_fabric`]) — channels
//!   inside one process, used by tests, benches, and embedded deployments;
//! * **wire** ([`socket`] + [`wire`]) — a length-prefixed frame codec over
//!   real TCP or Unix-domain sockets, many sessions multiplexed per socket,
//!   with [`wire_connector`] dialing out and [`serve_wire`] bridging
//!   accepted sockets into an in-process fabric on the server.
//!
//! Server modes (transport-independent):
//!
//! * **Dedicated** ([`serve`]) — the paper's process model: the DLFM **main
//!   daemon** listens for connects and spawns one **child agent** per
//!   connection; all requests on that connection are served by that agent.
//!   On the in-process transport requests are strictly **synchronous**: the
//!   request channel is a rendezvous, so a sender blocks until the child
//!   agent actually issues its message receive. This is load-bearing — the
//!   distributed-deadlock scenario of §4 hinges on "T11 is blocked on
//!   message send as the DLFM child is still doing the commit processing
//!   for T1 (and has not issued msg receive)". (The wire transport buffers
//!   per-session, so §4's send-blocking semantics are an in-process
//!   property.)
//! * **Pooled** ([`pool_fabric`] + [`serve_pool`]) — a fixed set of worker
//!   threads pulls from one shared bounded run queue; any worker serves any
//!   connection. Every connection carries a fabric-assigned **session id**
//!   on each request so per-connection state can live server-side, keyed by
//!   that id. The bounded queue is the admission control: when it stays
//!   full past the admission timeout the sender gets
//!   [`RpcError::Overloaded`] instead of queueing unboundedly.
//!
//! [`ClientConn::post`] is a fire-and-forget send used to model the
//! **asynchronous commit** design the paper rejects.

#![warn(missing_docs)]

pub mod socket;
pub mod wire;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use obs::trace::{self, Layer, TraceCtx};

pub use socket::{
    serve_wire, set_wire_tracing, wire_tracing, Endpoint, SocketListener, WireAddr, WireServer,
    WireStats,
};
pub use wire::{Reader, Wire, WireError};

/// RPC-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The peer hung up.
    Disconnected,
    /// A timed call did not complete in time.
    Timeout,
    /// The server's run queue stayed full past the admission timeout
    /// (pooled mode only): the request was rejected, not queued.
    Overloaded,
    /// A wire-transport failure: dial error, frame corruption, or a
    /// payload that did not decode.
    Wire(String),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Disconnected => f.write_str("peer disconnected"),
            RpcError::Timeout => f.write_str("rpc timeout"),
            RpcError::Overloaded => f.write_str("server overloaded (run queue full)"),
            RpcError::Wire(msg) => write!(f, "wire transport error: {msg}"),
        }
    }
}

impl std::error::Error for RpcError {}

/// What a connection puts on the wire.
pub(crate) enum Payload<Req> {
    /// An ordinary request.
    Request(Req),
    /// The client endpoint was dropped (pooled mode sends this so the
    /// server can retire the session's state; dedicated mode signals the
    /// same by closing the per-connection channel).
    Hangup,
}

/// Where a response should go. `None` means no reply is expected (posts
/// and hangups). The channel form serves in-process callers; the wire form
/// carries enough to encode a Reply frame back onto the caller's socket.
pub(crate) enum ReplyDest<Resp> {
    /// An in-process caller parked on a channel.
    Chan(Sender<Resp>),
    /// A remote caller parked behind the socket whose writer queue this is.
    Wire {
        /// The socket's writer queue (encoded frames).
        writer: Sender<Vec<u8>>,
        /// Wire session id (client-facing, not the server-local one).
        session: u64,
        /// Correlation id of the Call being answered.
        corr: u64,
        /// Response serializer, captured where `Resp: Wire` held.
        encode: fn(&Resp, &mut Vec<u8>),
    },
}

/// A reply destination with a safety net: if a wire destination is dropped
/// unconsumed — the serving agent died, or a queued envelope was thrown
/// away at shutdown — a `Disconnected` status Reply is sent so the remote
/// caller fails cleanly instead of hanging. (An in-process caller gets the
/// same for free when its channel sender drops.)
pub(crate) struct ReplyTo<Resp>(pub(crate) Option<ReplyDest<Resp>>);

impl<Resp> Drop for ReplyTo<Resp> {
    fn drop(&mut self) {
        if let Some(ReplyDest::Wire { writer, session, corr, .. }) = self.0.take() {
            let frame = wire::Frame::new(
                wire::FrameKind::Reply,
                session,
                corr,
                vec![wire::status::DISCONNECTED],
            );
            let mut bytes = Vec::new();
            wire::encode_frame(&frame, &mut bytes);
            let _ = writer.send(bytes);
        }
    }
}

/// One message in flight. `reply` is empty for posted (fire-and-forget)
/// requests. `ctx` is the sender's trace context, installed on the
/// receiving agent's thread so spans on both sides share one trace id.
/// `session` is the fabric-assigned connection id (pooled workers key
/// server-side session state by it).
pub(crate) struct Envelope<Req, Resp> {
    pub(crate) payload: Payload<Req>,
    pub(crate) reply: ReplyTo<Resp>,
    pub(crate) ctx: Option<TraceCtx>,
    pub(crate) session: u64,
}

/// Fabric-wide instrumentation, shared by the connector, the listener,
/// and every connection created through them. Makes the paper's §4
/// backpressure directly visible: a synchronous commit keeps the child
/// agent busy, so the next sender blocks *on message send* — that is the
/// `send_blocked` gauge.
#[derive(Debug, Default)]
pub struct RpcStats {
    /// Synchronous calls started and not yet answered (gauge).
    pub in_flight: AtomicI64,
    /// Senders currently blocked in a rendezvous send waiting for the
    /// agent to issue its receive (gauge).
    pub send_blocked: AtomicI64,
    /// Synchronous calls issued (counter).
    pub calls: AtomicU64,
    /// Fire-and-forget posts issued (counter).
    pub posts: AtomicU64,
}

impl RpcStats {
    /// Current in-flight synchronous calls.
    pub fn in_flight(&self) -> i64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Senders currently blocked on a rendezvous send.
    pub fn send_blocked(&self) -> i64 {
        self.send_blocked.load(Ordering::Relaxed)
    }

    /// Total synchronous calls issued.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Total posts issued.
    pub fn posts(&self) -> u64 {
        self.posts.load(Ordering::Relaxed)
    }
}

/// Instrumentation of one agent pool ([`pool_fabric`] mode): admission
/// and occupancy, shared by the connector, every client connection, and
/// the worker threads.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Worker threads in the pool (set by [`serve_pool`]).
    pub workers: AtomicU64,
    /// Workers currently executing a request (gauge).
    pub busy: AtomicI64,
    /// Requests rejected by admission control (counter).
    pub rejects: AtomicU64,
    /// Requests a worker picked up and served (counter).
    pub served: AtomicU64,
    /// Session hangups processed (counter).
    pub hangups: AtomicU64,
}

impl PoolStats {
    /// Configured worker count.
    pub fn workers(&self) -> u64 {
        self.workers.load(Ordering::Relaxed)
    }

    /// Workers currently executing a request.
    pub fn busy(&self) -> i64 {
        self.busy.load(Ordering::Relaxed)
    }

    /// Requests rejected at admission.
    pub fn rejects(&self) -> u64 {
        self.rejects.load(Ordering::Relaxed)
    }

    /// Requests served by the pool.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Hangups processed.
    pub fn hangups(&self) -> u64 {
        self.hangups.load(Ordering::Relaxed)
    }
}

/// Decrements a gauge on drop (covers every exit path, panics included).
struct GaugeGuard<'a>(&'a AtomicI64);

impl<'a> GaugeGuard<'a> {
    fn enter(gauge: &'a AtomicI64) -> GaugeGuard<'a> {
        gauge.fetch_add(1, Ordering::Relaxed);
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Admission-control handle a pooled [`ClientConn`] carries: how long to
/// wait for run-queue space before rejecting, and where to count rejects.
struct Admission {
    timeout: Duration,
    pool: Arc<PoolStats>,
}

/// Serializer function pointers a wire connection carries, captured at
/// connector construction where `Req: Wire` and `Resp: Wire` held — so
/// `ClientConn` itself needs no `Wire` bounds.
pub(crate) struct WireVt<Req, Resp> {
    encode_req: fn(&Req, &mut Vec<u8>),
    decode_resp: fn(&[u8]) -> Result<Resp, WireError>,
}

impl<Req, Resp> Clone for WireVt<Req, Resp> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<Req, Resp> Copy for WireVt<Req, Resp> {}

pub(crate) fn encode_val<T: Wire>(v: &T, out: &mut Vec<u8>) {
    v.encode(out)
}

pub(crate) fn decode_val<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    T::decode(&mut r)
}

/// Which transport a [`ClientConn`] speaks.
enum ConnInner<Req, Resp> {
    /// In-process channels. In dedicated mode `tx` is this connection's
    /// private rendezvous channel; in pooled mode it is a clone of the
    /// pool's shared run queue and `admission` bounds the enqueue.
    Local { tx: Sender<Envelope<Req, Resp>>, admission: Option<Admission> },
    /// A session multiplexed over a shared socket.
    Wire { mux: Arc<socket::Mux>, vt: WireVt<Req, Resp> },
}

/// Client side of one connection (held by a host-database agent).
pub struct ClientConn<Req, Resp> {
    inner: ConnInner<Req, Resp>,
    stats: Arc<RpcStats>,
    session: u64,
    /// Set once the `rpc.call.disconnect` fault fires: the endpoint then
    /// behaves like a real peer disconnect (server saw a hangup, every
    /// later use fails) instead of a one-off error on a healthy channel.
    severed: AtomicBool,
}

impl<Req, Resp> ClientConn<Req, Resp> {
    fn envelope(&self, payload: Payload<Req>, reply: ReplyTo<Resp>) -> Envelope<Req, Resp> {
        Envelope { payload, reply, ctx: trace::current_ctx(), session: self.session }
    }

    /// The fabric-assigned session id of this connection.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Does this connection cross a real socket (vs in-process channels)?
    pub fn is_wire(&self) -> bool {
        matches!(self.inner, ConnInner::Wire { .. })
    }

    /// Tear the connection down as an injected disconnect: notify the
    /// server exactly like a dropped client (so it retires the session's
    /// state — open transactions roll back, locks release) and make every
    /// later use of this endpoint fail with [`RpcError::Disconnected`].
    fn sever(&self) {
        if !self.severed.swap(true, Ordering::Relaxed) {
            match &self.inner {
                ConnInner::Local { tx, admission } => {
                    let env = Envelope::<Req, Resp> {
                        payload: Payload::Hangup,
                        reply: ReplyTo(None),
                        ctx: None,
                        session: self.session,
                    };
                    let _ = match admission {
                        None => tx.send(env).is_ok(),
                        Some(adm) => tx.send_timeout(env, adm.timeout).is_ok(),
                    };
                }
                ConnInner::Wire { mux, .. } => mux.hangup(self.session),
            }
        }
    }

    fn is_severed(&self) -> bool {
        self.severed.load(Ordering::Relaxed)
    }

    /// Send one envelope over the local transport, applying admission
    /// control in pooled mode.
    fn send_env(
        &self,
        tx: &Sender<Envelope<Req, Resp>>,
        admission: &Option<Admission>,
        env: Envelope<Req, Resp>,
    ) -> Result<(), RpcError> {
        let _blocked = GaugeGuard::enter(&self.stats.send_blocked);
        match admission {
            None => tx.send(env).map_err(|_| RpcError::Disconnected),
            Some(adm) => tx.send_timeout(env, adm.timeout).map_err(|e| match e {
                crossbeam::channel::SendTimeoutError::Timeout(_) => {
                    adm.pool.rejects.fetch_add(1, Ordering::Relaxed);
                    let timeout = adm.timeout;
                    obs::journal::record(obs::journal::JournalKind::PoolReject, 0, || {
                        format!("admission reject: run queue full past {timeout:?}")
                    });
                    RpcError::Overloaded
                }
                crossbeam::channel::SendTimeoutError::Disconnected(_) => RpcError::Disconnected,
            }),
        }
    }

    /// Round trip over the socket transport.
    fn wire_call(
        &self,
        mux: &socket::Mux,
        vt: &WireVt<Req, Resp>,
        req: &Req,
        timeout: Option<Duration>,
    ) -> Result<Resp, RpcError> {
        let mut payload = Vec::new();
        (vt.encode_req)(req, &mut payload);
        let bytes = mux.call(wire::FrameKind::Call, self.session, payload, timeout)?;
        (vt.decode_resp)(&bytes).map_err(|e| RpcError::Wire(e.to_string()))
    }

    /// Synchronous call: blocks until the agent receives the request
    /// *and* sends the response. In pooled mode the enqueue is bounded by
    /// the admission timeout and may fail with [`RpcError::Overloaded`].
    ///
    /// Fault points (`obs::fault`, no-ops unless a test arms them) on the
    /// in-process transport: `rpc.call.disconnect` severs the connection
    /// for good — the server observes a hangup (and rolls the session
    /// back) and every later use of this endpoint fails;
    /// `rpc.call.overloaded` fails the call before the send;
    /// `rpc.call.drop` loses the request on the wire (the server never
    /// sees it, the caller observes a timeout); `rpc.call.delay` stalls
    /// delivery; `rpc.call.duplicate` delivers the request twice — the
    /// caller takes the first response, which is exactly how a
    /// retried-after-lost-ack message looks to the server. The socket
    /// transport has its own packet-level points (`rpc.wire.*`, see
    /// [`socket`]) injected in the frame writer instead.
    pub fn call(&self, req: Req) -> Result<Resp, RpcError>
    where
        Req: Clone,
    {
        let mut span = trace::span(Layer::Rpc, "call");
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let _in_flight = GaugeGuard::enter(&self.stats.in_flight);
        match &self.inner {
            ConnInner::Wire { mux, vt } => {
                if self.is_severed() {
                    span.fail();
                    return Err(RpcError::Disconnected);
                }
                let res = self.wire_call(mux, vt, &req, None);
                if res.is_err() {
                    span.fail();
                }
                res
            }
            ConnInner::Local { tx, admission } => {
                if self.is_severed() || obs::fault::fire("rpc.call.disconnect") {
                    self.sever();
                    span.fail();
                    return Err(RpcError::Disconnected);
                }
                if obs::fault::fire("rpc.call.overloaded") {
                    span.fail();
                    return Err(RpcError::Overloaded);
                }
                if obs::fault::fire("rpc.call.drop") {
                    span.fail();
                    return Err(RpcError::Timeout);
                }
                if obs::fault::fire("rpc.call.delay") {
                    std::thread::sleep(Duration::from_millis(2));
                }
                // The duplicate's reply needs buffer space: the agent
                // serves both deliveries, and its second ReplySlot::send
                // must never block on a caller that already returned with
                // the first response.
                let duplicate = obs::fault::fire("rpc.call.duplicate");
                let (rtx, rrx) = bounded(if duplicate { 2 } else { 1 });
                let dup_env = duplicate.then(|| {
                    self.envelope(
                        Payload::Request(req.clone()),
                        ReplyTo(Some(ReplyDest::Chan(rtx.clone()))),
                    )
                });
                let env = self.envelope(Payload::Request(req), ReplyTo(Some(ReplyDest::Chan(rtx))));
                if let Err(e) = self.send_env(tx, admission, env) {
                    span.fail();
                    return Err(e);
                }
                if let Some(env) = dup_env {
                    let _ = self.send_env(tx, admission, env);
                }
                rrx.recv().map_err(|_| {
                    span.fail();
                    RpcError::Disconnected
                })
            }
        }
    }

    /// Synchronous call with a deadline. On the in-process transport the
    /// *send* still blocks until the agent issues its receive (rendezvous);
    /// only the response wait is bounded. On the socket transport the whole
    /// round trip is bounded.
    pub fn call_timeout(&self, req: Req, timeout: Duration) -> Result<Resp, RpcError> {
        let mut span = trace::span(Layer::Rpc, "call_timeout");
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let _in_flight = GaugeGuard::enter(&self.stats.in_flight);
        if self.is_severed() {
            span.fail();
            return Err(RpcError::Disconnected);
        }
        match &self.inner {
            ConnInner::Wire { mux, vt } => {
                let res = self.wire_call(mux, vt, &req, Some(timeout));
                if res.is_err() {
                    span.fail();
                }
                res
            }
            ConnInner::Local { tx, .. } => {
                let (rtx, rrx) = bounded(1);
                let env = self.envelope(Payload::Request(req), ReplyTo(Some(ReplyDest::Chan(rtx))));
                let sent = {
                    let _blocked = GaugeGuard::enter(&self.stats.send_blocked);
                    tx.send_timeout(env, timeout)
                };
                if sent.is_err() {
                    span.fail();
                    return Err(RpcError::Timeout);
                }
                match rrx.recv_timeout(timeout) {
                    Ok(r) => Ok(r),
                    Err(RecvTimeoutError::Timeout) => {
                        span.fail();
                        Err(RpcError::Timeout)
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        span.fail();
                        Err(RpcError::Disconnected)
                    }
                }
            }
        }
    }

    /// Fire-and-forget post: returns as soon as the agent *receives* the
    /// request (dedicated mode), it is admitted to the run queue (pooled
    /// mode), or it is queued on the socket writer (wire transport),
    /// without waiting for processing (the unsafe asynchronous commit mode
    /// of §4).
    pub fn post(&self, req: Req) -> Result<(), RpcError> {
        self.stats.posts.fetch_add(1, Ordering::Relaxed);
        if self.is_severed() {
            return Err(RpcError::Disconnected);
        }
        match &self.inner {
            ConnInner::Wire { mux, vt } => {
                let mut payload = Vec::new();
                (vt.encode_req)(&req, &mut payload);
                mux.post(self.session, payload)
            }
            ConnInner::Local { tx, admission } => {
                let env = self.envelope(Payload::Request(req), ReplyTo(None));
                self.send_env(tx, admission, env)
            }
        }
    }

    /// Liveness probe. On the socket transport this is a wire-level
    /// Ping/Pong round trip — it proves the socket, both mux threads, and
    /// the server bridge are alive without touching any agent. In-process
    /// connections are alive by construction, so this is a no-op there.
    pub fn ping(&self, timeout: Duration) -> Result<(), RpcError> {
        if self.is_severed() {
            return Err(RpcError::Disconnected);
        }
        match &self.inner {
            ConnInner::Local { .. } => Ok(()),
            ConnInner::Wire { mux, .. } => {
                mux.call(wire::FrameKind::Ping, self.session, Vec::new(), Some(timeout)).map(|_| ())
            }
        }
    }

    /// Fabric-wide instrumentation (shared with the connector).
    pub fn stats(&self) -> &Arc<RpcStats> {
        &self.stats
    }
}

impl<Req, Resp> Drop for ClientConn<Req, Resp> {
    fn drop(&mut self) {
        // The server must learn the client is gone so it can retire this
        // session's state (roll back the open transaction, release locks).
        // Dedicated in-process connections signal it by the channel close
        // itself; pooled ones share the run queue, so they send an explicit
        // hangup; wire sessions share a socket, so they send a Hangup
        // frame. Best-effort everywhere — if the transport is already dead
        // the server-side cleanup ran (or runs) through its own teardown.
        // A severed connection already delivered its hangup.
        if self.is_severed() {
            return;
        }
        match &self.inner {
            ConnInner::Local { tx, admission: Some(adm) } => {
                let env = Envelope {
                    payload: Payload::Hangup,
                    reply: ReplyTo(None),
                    ctx: None,
                    session: self.session,
                };
                let _ = tx.send_timeout(env, adm.timeout);
            }
            ConnInner::Local { .. } => {}
            ConnInner::Wire { mux, .. } => mux.hangup(self.session),
        }
    }
}

/// Server side of one connection (held by a DLFM child agent).
pub struct ServerConn<Req, Resp> {
    pub(crate) rx: Receiver<Envelope<Req, Resp>>,
}

/// Where to send the response for a received request (empty for posts).
pub struct ReplySlot<Resp> {
    to: ReplyTo<Resp>,
}

impl<Resp> ReplySlot<Resp> {
    /// Send the response. A dropped client is not an error for the agent.
    pub fn send(mut self, resp: Resp) {
        match self.to.0.take() {
            None => {}
            Some(ReplyDest::Chan(tx)) => {
                let _ = tx.send(resp);
            }
            Some(ReplyDest::Wire { writer, session, corr, encode }) => {
                let mut payload = vec![wire::status::OK];
                encode(&resp, &mut payload);
                let frame = wire::Frame::new(wire::FrameKind::Reply, session, corr, payload);
                let mut bytes = Vec::new();
                wire::encode_frame(&frame, &mut bytes);
                let _ = writer.send(bytes);
            }
        }
    }

    /// Was a reply requested (synchronous call) or not (post)?
    pub fn expects_reply(&self) -> bool {
        self.to.0.is_some()
    }
}

impl<Req, Resp> ServerConn<Req, Resp> {
    /// Receive the next request; blocks until one arrives. Returns
    /// `Disconnected` when the client is gone.
    ///
    /// As a side effect, the sender's trace context is installed on the
    /// calling thread, so spans opened while handling the request share
    /// the originating statement's trace id.
    pub fn recv(&self) -> Result<(Req, ReplySlot<Resp>), RpcError> {
        let env = self.rx.recv().map_err(|_| RpcError::Disconnected)?;
        trace::set_current_ctx(env.ctx);
        match env.payload {
            Payload::Request(req) => Ok((req, ReplySlot { to: env.reply })),
            // Dedicated connections signal hangup by closing the channel;
            // an explicit hangup is equivalent.
            Payload::Hangup => Err(RpcError::Disconnected),
        }
    }

    /// Receive with a timeout (lets agent loops poll a shutdown flag).
    /// Installs the sender's trace context like [`ServerConn::recv`].
    pub fn recv_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Option<(Req, ReplySlot<Resp>)>, RpcError> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => {
                trace::set_current_ctx(env.ctx);
                match env.payload {
                    Payload::Request(req) => Ok(Some((req, ReplySlot { to: env.reply }))),
                    Payload::Hangup => Err(RpcError::Disconnected),
                }
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(RpcError::Disconnected),
        }
    }
}

/// The listener held by the DLFM main daemon (dedicated mode).
pub struct Listener<Req, Resp> {
    rx: Receiver<ServerConn<Req, Resp>>,
    stats: Arc<RpcStats>,
}

impl<Req, Resp> Listener<Req, Resp> {
    /// Accept the next connection; blocks. Returns `Disconnected` when the
    /// connector endpoint is gone.
    pub fn accept(&self) -> Result<ServerConn<Req, Resp>, RpcError> {
        self.rx.recv().map_err(|_| RpcError::Disconnected)
    }

    /// Accept with a timeout.
    pub fn accept_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Option<ServerConn<Req, Resp>>, RpcError> {
        match self.rx.recv_timeout(timeout) {
            Ok(c) => Ok(Some(c)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(RpcError::Disconnected),
        }
    }

    /// Fabric-wide instrumentation.
    pub fn stats(&self) -> &Arc<RpcStats> {
        &self.stats
    }

    /// Connections waiting to be accepted (gauge).
    pub fn accept_backlog(&self) -> usize {
        self.rx.len()
    }
}

/// Client end of a remote fabric: the dial address plus the (lazily
/// established, re-established on death) socket multiplexer every
/// connection from this connector shares.
pub(crate) struct RemoteState {
    addr: WireAddr,
    mux: Mutex<Option<Arc<socket::Mux>>>,
    stats: Arc<WireStats>,
}

impl RemoteState {
    /// The live mux, dialing (or redialing a dead connection) as needed.
    fn mux_or_dial(&self) -> Result<Arc<socket::Mux>, RpcError> {
        let mut guard = self.mux.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(m) = guard.as_ref() {
            if !m.is_dead() {
                return Ok(m.clone());
            }
            self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        let m = socket::Mux::dial(&self.addr, self.stats.clone())?;
        *guard = Some(m.clone());
        Ok(m)
    }
}

/// How a connector hands out connections.
pub(crate) enum ConnectorMode<Req, Resp> {
    /// Each connect creates a private rendezvous channel served by a
    /// dedicated child agent.
    Dedicated(Sender<ServerConn<Req, Resp>>),
    /// Each connect clones the pool's shared bounded run queue.
    Pooled {
        /// The shared run queue.
        tx: Sender<Envelope<Req, Resp>>,
        /// Pool instrumentation.
        pool: Arc<PoolStats>,
        /// How long senders wait for queue space before rejection.
        admission_timeout: Duration,
    },
    /// Each connect is a fresh session multiplexed over the (shared,
    /// lazily dialed) socket to a remote server.
    Remote {
        /// Dial state shared by clones of this connector.
        state: Arc<RemoteState>,
        /// Serializers captured at construction.
        vt: WireVt<Req, Resp>,
    },
}

/// The connector endpoint host agents use to reach a DLFM.
pub struct Connector<Req, Resp> {
    pub(crate) mode: ConnectorMode<Req, Resp>,
    pub(crate) stats: Arc<RpcStats>,
    pub(crate) sessions: Arc<AtomicU64>,
}

impl<Req, Resp> Clone for Connector<Req, Resp> {
    fn clone(&self) -> Self {
        let mode = match &self.mode {
            ConnectorMode::Dedicated(tx) => ConnectorMode::Dedicated(tx.clone()),
            ConnectorMode::Pooled { tx, pool, admission_timeout } => ConnectorMode::Pooled {
                tx: tx.clone(),
                pool: pool.clone(),
                admission_timeout: *admission_timeout,
            },
            ConnectorMode::Remote { state, vt } => {
                ConnectorMode::Remote { state: state.clone(), vt: *vt }
            }
        };
        Connector { mode, stats: self.stats.clone(), sessions: self.sessions.clone() }
    }
}

impl<Req, Resp> Connector<Req, Resp> {
    /// Establish a new connection. Dedicated mode: a fresh child agent will
    /// serve it. Pooled mode: a fresh session id is assigned and any pool
    /// worker may serve its requests. Remote mode: a fresh session over the
    /// shared socket, dialing (or redialing) it if needed.
    pub fn connect(&self) -> Result<ClientConn<Req, Resp>, RpcError> {
        let session = self.sessions.fetch_add(1, Ordering::Relaxed) + 1;
        match &self.mode {
            ConnectorMode::Dedicated(ctx) => {
                // Rendezvous request channel: sends block until the agent
                // receives.
                let (tx, rx) = bounded(0);
                ctx.send(ServerConn { rx }).map_err(|_| RpcError::Disconnected)?;
                Ok(ClientConn {
                    inner: ConnInner::Local { tx, admission: None },
                    stats: self.stats.clone(),
                    session,
                    severed: AtomicBool::new(false),
                })
            }
            ConnectorMode::Pooled { tx, pool, admission_timeout } => Ok(ClientConn {
                inner: ConnInner::Local {
                    tx: tx.clone(),
                    admission: Some(Admission { timeout: *admission_timeout, pool: pool.clone() }),
                },
                stats: self.stats.clone(),
                session,
                severed: AtomicBool::new(false),
            }),
            ConnectorMode::Remote { state, vt } => {
                let mux = state.mux_or_dial()?;
                Ok(ClientConn {
                    inner: ConnInner::Wire { mux, vt: *vt },
                    stats: self.stats.clone(),
                    session,
                    severed: AtomicBool::new(false),
                })
            }
        }
    }

    /// Fabric-wide instrumentation (shared with the listener and every
    /// connection).
    pub fn stats(&self) -> &Arc<RpcStats> {
        &self.stats
    }

    /// Pool instrumentation, when this connector fronts an agent pool.
    pub fn pool_stats(&self) -> Option<&Arc<PoolStats>> {
        match &self.mode {
            ConnectorMode::Pooled { pool, .. } => Some(pool),
            _ => None,
        }
    }

    /// Wire-transport instrumentation, when this connector dials a socket.
    pub fn wire_stats(&self) -> Option<&Arc<WireStats>> {
        match &self.mode {
            ConnectorMode::Remote { state, .. } => Some(&state.stats),
            _ => None,
        }
    }

    /// Connections waiting to be accepted (dedicated mode) or requests
    /// waiting in the shared run queue (pooled mode) — both are "work the
    /// server has not picked up yet". Always 0 for a remote connector (the
    /// backlog lives on the server).
    pub fn accept_backlog(&self) -> usize {
        match &self.mode {
            ConnectorMode::Dedicated(tx) => tx.len(),
            ConnectorMode::Pooled { tx, .. } => tx.len(),
            ConnectorMode::Remote { .. } => 0,
        }
    }

    /// Requests waiting in the shared run queue (pooled mode only).
    pub fn pool_queue_depth(&self) -> Option<usize> {
        match &self.mode {
            ConnectorMode::Pooled { tx, .. } => Some(tx.len()),
            _ => None,
        }
    }

    /// Render this fabric's base `rpc_*` metrics into a registry: call and
    /// post totals, in-flight and send-blocked gauges, and the accept
    /// backlog; a remote connector adds its `rpc_wire_*` family. Servers
    /// layer their own pool gauges on top.
    pub fn render_metrics(&self, r: &mut obs::Registry) {
        let stats = self.stats();
        r.counter("rpc_calls_total", "Round-trip RPC calls issued.", &[], stats.calls());
        r.counter("rpc_posts_total", "One-way RPC posts issued.", &[], stats.posts());
        r.gauge("rpc_in_flight", "RPC calls currently awaiting a reply.", &[], stats.in_flight());
        r.gauge(
            "rpc_send_blocked",
            "Senders currently blocked on the rendezvous channel (paper section 4).",
            &[],
            stats.send_blocked(),
        );
        r.gauge(
            "rpc_accept_backlog",
            "Connections queued at the main daemon's accept loop.",
            &[],
            self.accept_backlog() as i64,
        );
        if let ConnectorMode::Remote { state, .. } = &self.mode {
            state.stats.render(r);
        }
    }
}

/// Create a dedicated-mode listener/connector pair (one per DLFM
/// instance): every connect is served by its own child agent.
pub fn fabric<Req, Resp>() -> (Listener<Req, Resp>, Connector<Req, Resp>) {
    let (tx, rx) = bounded(64);
    let stats = Arc::new(RpcStats::default());
    (
        Listener { rx, stats: stats.clone() },
        Connector {
            mode: ConnectorMode::Dedicated(tx),
            stats,
            sessions: Arc::new(AtomicU64::new(0)),
        },
    )
}

/// Create a connector that dials a remote fabric over a socket. The
/// connection is established lazily on the first [`Connector::connect`]
/// and redialed transparently after a disconnect (counted in
/// `rpc_wire_reconnects_total`). All sessions share one socket — the
/// multiplexer runs one reader and one writer thread total, not per
/// session.
pub fn wire_connector<Req, Resp>(addr: WireAddr) -> Connector<Req, Resp>
where
    Req: Wire,
    Resp: Wire,
{
    Connector {
        mode: ConnectorMode::Remote {
            state: Arc::new(RemoteState {
                addr,
                mux: Mutex::new(None),
                stats: Arc::new(WireStats::default()),
            }),
            vt: WireVt { encode_req: encode_val::<Req>, decode_resp: decode_val::<Resp> },
        },
        stats: Arc::new(RpcStats::default()),
        sessions: Arc::new(AtomicU64::new(0)),
    }
}

/// The run-queue endpoint [`serve_pool`] drains (pooled mode).
pub struct PoolListener<Req, Resp> {
    rx: Receiver<Envelope<Req, Resp>>,
    stats: Arc<RpcStats>,
    pool: Arc<PoolStats>,
}

impl<Req, Resp> PoolListener<Req, Resp> {
    /// Fabric-wide instrumentation.
    pub fn stats(&self) -> &Arc<RpcStats> {
        &self.stats
    }

    /// Pool instrumentation.
    pub fn pool_stats(&self) -> &Arc<PoolStats> {
        &self.pool
    }
}

/// Create a pooled-mode fabric: one shared bounded run queue of depth
/// `queue_depth`. Senders wait at most `admission_timeout` for queue space
/// before their request is rejected with [`RpcError::Overloaded`].
pub fn pool_fabric<Req, Resp>(
    queue_depth: usize,
    admission_timeout: Duration,
) -> (PoolListener<Req, Resp>, Connector<Req, Resp>) {
    let (tx, rx) = bounded(queue_depth.max(1));
    let stats = Arc::new(RpcStats::default());
    let pool = Arc::new(PoolStats::default());
    (
        PoolListener { rx, stats: stats.clone(), pool: pool.clone() },
        Connector {
            mode: ConnectorMode::Pooled { tx, pool, admission_timeout },
            stats,
            sessions: Arc::new(AtomicU64::new(0)),
        },
    )
}

/// What a pooled worker hands to its handler.
pub enum PoolEvent<Req> {
    /// A request from some session.
    Request {
        /// Fabric-assigned session (connection) id.
        session: u64,
        /// The request.
        req: Req,
    },
    /// The session's client endpoint was dropped: retire its state.
    Hangup {
        /// Fabric-assigned session (connection) id.
        session: u64,
    },
}

/// Handle to a running server (dedicated main daemon + child agents, or an
/// agent pool).
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Child-agent threads (dedicated mode) or pool workers (pooled mode);
    /// all joined on shutdown so no agent outlives the server.
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Agent threads spawned so far: one per connection in dedicated mode
    /// (the paper's process model), the fixed worker count in pooled mode.
    pub agents_spawned: Arc<AtomicU64>,
}

impl ServerHandle {
    /// Ask the main daemon and all agent threads to stop, then join every
    /// one of them: after this returns no agent thread is running.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let drained: Vec<JoinHandle<()>> = {
            let mut threads = self.threads.lock().unwrap_or_else(|e| e.into_inner());
            threads.drain(..).collect()
        };
        for h in drained {
            let _ = h.join();
        }
    }

    /// Agent threads still alive (diagnostics; 0 after [`Self::shutdown`]).
    pub fn live_threads(&self) -> usize {
        self.threads.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run a main daemon in dedicated mode: accept connections and spawn one
/// child-agent thread per connection. `factory` builds the per-connection
/// handler, which is invoked once per request. All child threads are
/// joined by [`ServerHandle::shutdown`].
pub fn serve<Req, Resp, H, F>(listener: Listener<Req, Resp>, mut factory: F) -> ServerHandle
where
    Req: Send + 'static,
    Resp: Send + 'static,
    H: FnMut(Req, ReplySlot<Resp>) + Send + 'static,
    F: FnMut() -> H + Send + 'static,
{
    let shutdown = Arc::new(AtomicBool::new(false));
    let agents = Arc::new(AtomicU64::new(0));
    let threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let sd = shutdown.clone();
    let ag = agents.clone();
    let th = threads.clone();
    let accept_thread = std::thread::spawn(move || {
        while !sd.load(Ordering::SeqCst) {
            match listener.accept_timeout(Duration::from_millis(20)) {
                Ok(Some(conn)) => {
                    ag.fetch_add(1, Ordering::Relaxed);
                    let mut handler = factory();
                    let child_sd = sd.clone();
                    let child = std::thread::spawn(move || loop {
                        if child_sd.load(Ordering::SeqCst) {
                            break;
                        }
                        match conn.recv_timeout(Duration::from_millis(20)) {
                            Ok(Some((req, slot))) => handler(req, slot),
                            Ok(None) => continue,
                            Err(_) => break,
                        }
                    });
                    th.lock().unwrap_or_else(|e| e.into_inner()).push(child);
                }
                Ok(None) => continue,
                Err(_) => break,
            }
        }
    });
    ServerHandle { shutdown, accept_thread: Some(accept_thread), threads, agents_spawned: agents }
}

/// Run an agent pool: `workers` threads pull from the shared run queue and
/// serve requests from any session. `factory` builds one handler per
/// *worker* (not per connection — per-session state must live behind the
/// handler, keyed by the session id of each [`PoolEvent`]).
///
/// Shutdown is a graceful drain: each worker first serves whatever is
/// already queued, then exits; [`ServerHandle::shutdown`] joins them all.
pub fn serve_pool<Req, Resp, H, F>(
    listener: PoolListener<Req, Resp>,
    workers: usize,
    mut factory: F,
) -> ServerHandle
where
    Req: Send + 'static,
    Resp: Send + 'static,
    H: FnMut(PoolEvent<Req>, ReplySlot<Resp>) + Send + 'static,
    F: FnMut() -> H + Send + 'static,
{
    let workers = workers.max(1);
    let shutdown = Arc::new(AtomicBool::new(false));
    let agents = Arc::new(AtomicU64::new(workers as u64));
    let threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let PoolListener { rx, stats: _, pool } = listener;
    pool.workers.store(workers as u64, Ordering::Relaxed);
    {
        let mut th = threads.lock().unwrap_or_else(|e| e.into_inner());
        for _ in 0..workers {
            let rx = rx.clone();
            let pool = pool.clone();
            let sd = shutdown.clone();
            let mut handler = factory();
            th.push(std::thread::spawn(move || {
                let mut draining = false;
                loop {
                    // On shutdown, finish what is already queued (graceful
                    // drain), then exit.
                    if !draining && sd.load(Ordering::SeqCst) {
                        draining = true;
                    }
                    let timeout = if draining { Duration::ZERO } else { Duration::from_millis(10) };
                    match rx.recv_timeout(timeout) {
                        Ok(env) => {
                            let _busy = GaugeGuard::enter(&pool.busy);
                            trace::set_current_ctx(env.ctx);
                            match env.payload {
                                Payload::Request(req) => {
                                    pool.served.fetch_add(1, Ordering::Relaxed);
                                    handler(
                                        PoolEvent::Request { session: env.session, req },
                                        ReplySlot { to: env.reply },
                                    );
                                }
                                Payload::Hangup => {
                                    pool.hangups.fetch_add(1, Ordering::Relaxed);
                                    handler(
                                        PoolEvent::Hangup { session: env.session },
                                        ReplySlot { to: ReplyTo(None) },
                                    );
                                }
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if draining {
                                break;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }));
        }
    }
    // `rx` drops here: once every worker exits, all receivers are gone and
    // blocked/queued senders observe Disconnected instead of hanging.
    ServerHandle { shutdown, accept_thread: None, threads, agents_spawned: agents }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn call_roundtrip() {
        let (listener, connector) = fabric::<i32, i32>();
        let mut handle = serve(listener, || |req: i32, slot: ReplySlot<i32>| slot.send(req * 2));
        let conn = connector.connect().unwrap();
        assert_eq!(conn.call(21).unwrap(), 42);
        assert_eq!(conn.call(5).unwrap(), 10);
        handle.shutdown();
    }

    #[test]
    fn each_connection_gets_its_own_agent() {
        let (listener, connector) = fabric::<i32, i32>();
        let handle = serve(listener, || {
            // Per-agent state: a counter proving requests stay on one agent.
            let mut count = 0;
            move |_req: i32, slot: ReplySlot<i32>| {
                count += 1;
                slot.send(count)
            }
        });
        let c1 = connector.connect().unwrap();
        let c2 = connector.connect().unwrap();
        assert_eq!(c1.call(0).unwrap(), 1);
        assert_eq!(c1.call(0).unwrap(), 2);
        assert_eq!(c2.call(0).unwrap(), 1, "second connection has a fresh agent");
        // Give the accept loop a moment to register both agents.
        thread::sleep(Duration::from_millis(50));
        assert_eq!(handle.agents_spawned.load(Ordering::Relaxed), 2);
        drop(handle);
    }

    #[test]
    fn send_blocks_while_agent_is_busy() {
        // The §4 scenario: a posted (async) commit keeps the agent busy and
        // the next synchronous call blocks on message send.
        let (listener, connector) = fabric::<&'static str, &'static str>();
        let mut handle = serve(listener, || {
            |req: &'static str, slot: ReplySlot<&'static str>| {
                if req == "commit" {
                    thread::sleep(Duration::from_millis(200));
                }
                slot.send("done");
            }
        });
        let conn = connector.connect().unwrap();
        conn.post("commit").unwrap();
        let started = std::time::Instant::now();
        // The agent is mid-commit and has not issued its receive, so this
        // send blocks until it finishes.
        assert_eq!(conn.call("link").unwrap(), "done");
        assert!(
            started.elapsed() >= Duration::from_millis(150),
            "call should have blocked behind the in-flight commit"
        );
        handle.shutdown();
    }

    #[test]
    fn call_timeout_fires_when_agent_stalls() {
        let (listener, connector) = fabric::<u8, u8>();
        let mut handle = serve(listener, || {
            |_req: u8, slot: ReplySlot<u8>| {
                thread::sleep(Duration::from_millis(300));
                slot.send(0);
            }
        });
        let conn = connector.connect().unwrap();
        conn.post(0).unwrap(); // occupy the agent
        let err = conn.call_timeout(1, Duration::from_millis(50)).unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        handle.shutdown();
    }

    #[test]
    fn disconnect_reported() {
        let (listener, connector) = fabric::<u8, u8>();
        let conn = connector.connect().unwrap();
        let server = listener.accept().unwrap();
        drop(server);
        assert_eq!(conn.call(1).unwrap_err(), RpcError::Disconnected);
    }

    #[test]
    fn stats_count_calls_and_blocked_senders() {
        let (listener, connector) = fabric::<u8, u8>();
        let stats = connector.stats().clone();
        let mut handle = serve(listener, || {
            |req: u8, slot: ReplySlot<u8>| {
                if req == 1 {
                    thread::sleep(Duration::from_millis(120));
                }
                slot.send(req)
            }
        });
        let conn = connector.connect().unwrap();
        conn.post(1).unwrap(); // occupy the agent for ~120ms
        let c2 = connector.connect().unwrap();
        let h = thread::spawn(move || c2.call(0).unwrap());
        // While the post is being processed, a second call through a fresh
        // connection proceeds, but a call on the busy connection blocks on
        // send; watch the gauges move.
        let conn2 = connector.connect().unwrap();
        drop(conn2);
        thread::sleep(Duration::from_millis(30));
        let blocked_seen = {
            let busy = thread::spawn(move || conn.call(2).unwrap());
            thread::sleep(Duration::from_millis(30));
            let seen = stats.send_blocked() >= 1;
            assert_eq!(busy.join().unwrap(), 2);
            seen
        };
        assert!(blocked_seen, "sender blocked on rendezvous send must show in the gauge");
        h.join().unwrap();
        assert!(stats.calls() >= 2);
        assert_eq!(stats.posts(), 1);
        assert_eq!(stats.in_flight(), 0, "gauge drains when calls complete");
        assert_eq!(stats.send_blocked(), 0);
        handle.shutdown();
    }

    #[test]
    fn trace_ctx_propagates_to_agent_thread() {
        let (listener, connector) = fabric::<u8, u64>();
        // The handler reports the trace id installed on its thread.
        let mut handle = serve(listener, || {
            |_req: u8, slot: ReplySlot<u64>| {
                let id = obs::trace::current_ctx().map(|c| c.trace_id).unwrap_or(0);
                slot.send(id)
            }
        });
        let conn = connector.connect().unwrap();

        // Without a caller-side context the RPC span starts a fresh trace.
        let agent_side = conn.call(0).unwrap();
        assert_ne!(agent_side, 0, "rpc span should give the agent a trace id");

        // With a root span installed (the host statement boundary), the
        // agent sees that trace id.
        let root = obs::trace::span_root(Layer::Host, "stmt");
        let agent_side = conn.call(0).unwrap();
        assert_eq!(agent_side, root.ctx().trace_id);
        drop(root);
        handle.shutdown();
    }

    #[test]
    fn post_does_not_wait_for_processing() {
        let (listener, connector) = fabric::<u8, u8>();
        let mut handle = serve(listener, || {
            |_req: u8, slot: ReplySlot<u8>| {
                thread::sleep(Duration::from_millis(150));
                slot.send(0);
            }
        });
        let conn = connector.connect().unwrap();
        let started = std::time::Instant::now();
        conn.post(1).unwrap();
        assert!(
            started.elapsed() < Duration::from_millis(100),
            "post should return once the agent receives, not when it finishes"
        );
        handle.shutdown();
    }

    #[test]
    fn dedicated_shutdown_joins_child_agents() {
        // Regression for the detached-thread leak: every child agent must
        // be joined by shutdown(), observable through a live-agent counter
        // decremented as each child thread exits.
        struct Live(Arc<AtomicI64>);
        impl Drop for Live {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let live = Arc::new(AtomicI64::new(0));
        let (listener, connector) = fabric::<u8, u8>();
        let l = live.clone();
        let mut handle = serve(listener, move || {
            l.fetch_add(1, Ordering::SeqCst);
            let guard = Live(l.clone());
            move |req: u8, slot: ReplySlot<u8>| {
                let _ = &guard;
                slot.send(req)
            }
        });
        let conns: Vec<_> = (0..4).map(|_| connector.connect().unwrap()).collect();
        for c in &conns {
            assert_eq!(c.call(7).unwrap(), 7);
        }
        assert_eq!(live.load(Ordering::SeqCst), 4);
        handle.shutdown();
        assert_eq!(
            live.load(Ordering::SeqCst),
            0,
            "all child agents must have exited once shutdown() returns"
        );
        assert_eq!(handle.live_threads(), 0);
    }

    // ------------------------------------------------------------------
    // Pooled mode
    // ------------------------------------------------------------------

    #[test]
    fn pool_roundtrip_and_worker_count() {
        let (listener, connector) = pool_fabric::<i32, i32>(16, Duration::from_millis(100));
        let pool = listener.pool_stats().clone();
        let mut handle = serve_pool(listener, 3, || {
            |ev: PoolEvent<i32>, slot: ReplySlot<i32>| {
                if let PoolEvent::Request { req, .. } = ev {
                    slot.send(req * 2)
                }
            }
        });
        let conn = connector.connect().unwrap();
        assert_eq!(conn.call(21).unwrap(), 42);
        assert_eq!(pool.workers(), 3);
        assert_eq!(handle.agents_spawned.load(Ordering::Relaxed), 3);
        assert!(pool.served() >= 1);
        handle.shutdown();
    }

    #[test]
    fn pool_sessions_are_not_sticky() {
        // One worker, many connections: every session is served, and the
        // worker sees each session's own id (state can be keyed by it).
        let (listener, connector) = pool_fabric::<u8, u64>(16, Duration::from_millis(100));
        let mut handle = serve_pool(listener, 1, || {
            |ev: PoolEvent<u8>, slot: ReplySlot<u64>| {
                if let PoolEvent::Request { session, .. } = ev {
                    slot.send(session)
                }
            }
        });
        let c1 = connector.connect().unwrap();
        let c2 = connector.connect().unwrap();
        let s1 = c1.call(0).unwrap();
        let s2 = c2.call(0).unwrap();
        assert_ne!(s1, s2, "each connection carries its own session id");
        assert_eq!(c1.call(0).unwrap(), s1, "session id is stable per connection");
        handle.shutdown();
    }

    #[test]
    fn pool_rejects_when_saturated() {
        // Queue depth 1, one worker stuck processing: the first call
        // occupies the worker, the second fills the queue, the third must
        // be rejected with Overloaded within the admission timeout.
        let (listener, connector) = pool_fabric::<u8, u8>(1, Duration::from_millis(40));
        let pool = listener.pool_stats().clone();
        let mut handle = serve_pool(listener, 1, || {
            |ev: PoolEvent<u8>, slot: ReplySlot<u8>| {
                if let PoolEvent::Request { req, .. } = ev {
                    if req == 9 {
                        thread::sleep(Duration::from_millis(300));
                    }
                    slot.send(req);
                }
            }
        });
        let conn = connector.connect().unwrap();
        conn.post(9).unwrap(); // occupies the single worker
        thread::sleep(Duration::from_millis(30));
        conn.post(1).unwrap(); // fills the queue (depth 1)
        let err = conn.call(2).unwrap_err();
        assert_eq!(err, RpcError::Overloaded);
        assert!(pool.rejects() >= 1, "admission rejects must be counted");
        handle.shutdown();
    }

    #[test]
    fn pool_shutdown_drains_queue_and_joins_workers() {
        struct Live(Arc<AtomicI64>);
        impl Drop for Live {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let live = Arc::new(AtomicI64::new(0));
        let served = Arc::new(AtomicU64::new(0));
        let (listener, connector) = pool_fabric::<u8, u8>(64, Duration::from_millis(100));
        let (l, s) = (live.clone(), served.clone());
        let mut handle = serve_pool(listener, 2, move || {
            l.fetch_add(1, Ordering::SeqCst);
            let guard = Live(l.clone());
            let s = s.clone();
            move |ev: PoolEvent<u8>, slot: ReplySlot<u8>| {
                let _ = &guard;
                if let PoolEvent::Request { req, .. } = ev {
                    s.fetch_add(1, Ordering::SeqCst);
                    slot.send(req);
                }
            }
        });
        let conn = connector.connect().unwrap();
        // Queue a burst of posts, then shut down immediately: the drain
        // must serve everything already admitted before workers exit.
        for i in 0..20 {
            conn.post(i).unwrap();
        }
        handle.shutdown();
        assert_eq!(live.load(Ordering::SeqCst), 0, "all workers joined");
        assert_eq!(handle.live_threads(), 0);
        assert_eq!(served.load(Ordering::SeqCst), 20, "queued requests served before exit");
    }

    #[test]
    fn pool_hangup_reaches_handler() {
        let hangups = Arc::new(AtomicU64::new(0));
        let (listener, connector) = pool_fabric::<u8, u8>(16, Duration::from_millis(100));
        let pool = listener.pool_stats().clone();
        let h = hangups.clone();
        let mut handle = serve_pool(listener, 1, move || {
            let h = h.clone();
            move |ev: PoolEvent<u8>, slot: ReplySlot<u8>| match ev {
                PoolEvent::Request { req, .. } => slot.send(req),
                PoolEvent::Hangup { .. } => {
                    h.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        let conn = connector.connect().unwrap();
        assert_eq!(conn.call(3).unwrap(), 3);
        drop(conn);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while hangups.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(hangups.load(Ordering::SeqCst), 1, "drop must deliver a hangup event");
        assert_eq!(pool.hangups(), 1);
        handle.shutdown();
    }

    #[test]
    fn pool_no_rejects_below_capacity() {
        let (listener, connector) = pool_fabric::<u8, u8>(32, Duration::from_millis(200));
        let pool = listener.pool_stats().clone();
        let mut handle = serve_pool(listener, 4, || {
            |ev: PoolEvent<u8>, slot: ReplySlot<u8>| {
                if let PoolEvent::Request { req, .. } = ev {
                    slot.send(req)
                }
            }
        });
        let mut joins = Vec::new();
        for t in 0..8u8 {
            let connector = connector.clone();
            joins.push(thread::spawn(move || {
                let conn = connector.connect().unwrap();
                for i in 0..50u8 {
                    assert_eq!(conn.call(i.wrapping_add(t)).unwrap(), i.wrapping_add(t));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(pool.rejects(), 0, "no rejects below capacity");
        // The reply is sent from inside the handler, so a client can see
        // its response a hair before the worker drops its busy guard.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while pool.busy() != 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.busy(), 0, "busy gauge drains");
        handle.shutdown();
    }
}
