//! # dlrpc — the agent connection fabric
//!
//! Models the remote-procedure-call mechanism between host-database agents
//! and DLFM child agents (paper §2, §3.5):
//!
//! * the DLFM **main daemon** listens for connects and spawns one **child
//!   agent** per connection; all requests on that connection are served by
//!   that agent;
//! * requests are strictly **synchronous**: the request channel is a
//!   rendezvous, so a sender blocks until the child agent actually issues
//!   its message receive. This is load-bearing — the distributed-deadlock
//!   scenario of §4 hinges on "T11 is blocked on message send as the DLFM
//!   child is still doing the commit processing for T1 (and has not issued
//!   msg receive)";
//! * [`ClientConn::post`] is a fire-and-forget send used to model the
//!   **asynchronous commit** design the paper rejects.

#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use obs::trace::{self, Layer, TraceCtx};

/// RPC-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The peer hung up.
    Disconnected,
    /// A timed call did not complete in time.
    Timeout,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Disconnected => f.write_str("peer disconnected"),
            RpcError::Timeout => f.write_str("rpc timeout"),
        }
    }
}

impl std::error::Error for RpcError {}

/// One request in flight. `reply` is `None` for posted (fire-and-forget)
/// requests. `ctx` is the sender's trace context, installed on the
/// receiving agent's thread so spans on both sides share one trace id.
struct Envelope<Req, Resp> {
    req: Req,
    reply: Option<Sender<Resp>>,
    ctx: Option<TraceCtx>,
}

/// Fabric-wide instrumentation, shared by the connector, the listener,
/// and every connection created through them. Makes the paper's §4
/// backpressure directly visible: a synchronous commit keeps the child
/// agent busy, so the next sender blocks *on message send* — that is the
/// `send_blocked` gauge.
#[derive(Debug, Default)]
pub struct RpcStats {
    /// Synchronous calls started and not yet answered (gauge).
    pub in_flight: AtomicI64,
    /// Senders currently blocked in a rendezvous send waiting for the
    /// agent to issue its receive (gauge).
    pub send_blocked: AtomicI64,
    /// Synchronous calls issued (counter).
    pub calls: AtomicU64,
    /// Fire-and-forget posts issued (counter).
    pub posts: AtomicU64,
}

impl RpcStats {
    /// Current in-flight synchronous calls.
    pub fn in_flight(&self) -> i64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Senders currently blocked on a rendezvous send.
    pub fn send_blocked(&self) -> i64 {
        self.send_blocked.load(Ordering::Relaxed)
    }

    /// Total synchronous calls issued.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Total posts issued.
    pub fn posts(&self) -> u64 {
        self.posts.load(Ordering::Relaxed)
    }
}

/// Decrements a gauge on drop (covers every exit path, panics included).
struct GaugeGuard<'a>(&'a AtomicI64);

impl<'a> GaugeGuard<'a> {
    fn enter(gauge: &'a AtomicI64) -> GaugeGuard<'a> {
        gauge.fetch_add(1, Ordering::Relaxed);
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Client side of one connection (held by a host-database agent).
pub struct ClientConn<Req, Resp> {
    tx: Sender<Envelope<Req, Resp>>,
    stats: Arc<RpcStats>,
}

impl<Req, Resp> ClientConn<Req, Resp> {
    fn envelope(&self, req: Req, reply: Option<Sender<Resp>>) -> Envelope<Req, Resp> {
        Envelope { req, reply, ctx: trace::current_ctx() }
    }

    /// Synchronous call: blocks until the child agent receives the request
    /// *and* sends the response.
    pub fn call(&self, req: Req) -> Result<Resp, RpcError> {
        let mut span = trace::span(Layer::Rpc, "call");
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let _in_flight = GaugeGuard::enter(&self.stats.in_flight);
        let (rtx, rrx) = bounded(1);
        let env = self.envelope(req, Some(rtx));
        let sent = {
            let _blocked = GaugeGuard::enter(&self.stats.send_blocked);
            self.tx.send(env)
        };
        if sent.is_err() {
            span.fail();
            return Err(RpcError::Disconnected);
        }
        rrx.recv().map_err(|_| {
            span.fail();
            RpcError::Disconnected
        })
    }

    /// Synchronous call with a deadline. Note the *send* still blocks until
    /// the agent issues its receive (rendezvous); only the response wait is
    /// bounded.
    pub fn call_timeout(&self, req: Req, timeout: Duration) -> Result<Resp, RpcError> {
        let mut span = trace::span(Layer::Rpc, "call_timeout");
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let _in_flight = GaugeGuard::enter(&self.stats.in_flight);
        let (rtx, rrx) = bounded(1);
        let env = self.envelope(req, Some(rtx));
        let sent = {
            let _blocked = GaugeGuard::enter(&self.stats.send_blocked);
            self.tx.send_timeout(env, timeout)
        };
        if sent.is_err() {
            span.fail();
            return Err(RpcError::Timeout);
        }
        match rrx.recv_timeout(timeout) {
            Ok(r) => Ok(r),
            Err(RecvTimeoutError::Timeout) => {
                span.fail();
                Err(RpcError::Timeout)
            }
            Err(RecvTimeoutError::Disconnected) => {
                span.fail();
                Err(RpcError::Disconnected)
            }
        }
    }

    /// Fire-and-forget post: returns as soon as the agent *receives* the
    /// request, without waiting for processing (the unsafe asynchronous
    /// commit mode of §4).
    pub fn post(&self, req: Req) -> Result<(), RpcError> {
        self.stats.posts.fetch_add(1, Ordering::Relaxed);
        let env = self.envelope(req, None);
        let _blocked = GaugeGuard::enter(&self.stats.send_blocked);
        self.tx.send(env).map_err(|_| RpcError::Disconnected)
    }

    /// Fabric-wide instrumentation (shared with the connector).
    pub fn stats(&self) -> &Arc<RpcStats> {
        &self.stats
    }
}

/// Server side of one connection (held by a DLFM child agent).
pub struct ServerConn<Req, Resp> {
    rx: Receiver<Envelope<Req, Resp>>,
}

/// Where to send the response for a received request (`None` for posts).
pub struct ReplySlot<Resp> {
    tx: Option<Sender<Resp>>,
}

impl<Resp> ReplySlot<Resp> {
    /// Send the response. A dropped client is not an error for the agent.
    pub fn send(self, resp: Resp) {
        if let Some(tx) = self.tx {
            let _ = tx.send(resp);
        }
    }

    /// Was a reply requested (synchronous call) or not (post)?
    pub fn expects_reply(&self) -> bool {
        self.tx.is_some()
    }
}

impl<Req, Resp> ServerConn<Req, Resp> {
    /// Receive the next request; blocks until one arrives. Returns
    /// `Disconnected` when the client is gone.
    ///
    /// As a side effect, the sender's trace context is installed on the
    /// calling thread, so spans opened while handling the request share
    /// the originating statement's trace id.
    pub fn recv(&self) -> Result<(Req, ReplySlot<Resp>), RpcError> {
        let env = self.rx.recv().map_err(|_| RpcError::Disconnected)?;
        trace::set_current_ctx(env.ctx);
        Ok((env.req, ReplySlot { tx: env.reply }))
    }

    /// Receive with a timeout (lets agent loops poll a shutdown flag).
    /// Installs the sender's trace context like [`ServerConn::recv`].
    pub fn recv_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Option<(Req, ReplySlot<Resp>)>, RpcError> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => {
                trace::set_current_ctx(env.ctx);
                Ok(Some((env.req, ReplySlot { tx: env.reply })))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(RpcError::Disconnected),
        }
    }
}

/// The listener held by the DLFM main daemon.
pub struct Listener<Req, Resp> {
    rx: Receiver<ServerConn<Req, Resp>>,
    stats: Arc<RpcStats>,
}

impl<Req, Resp> Listener<Req, Resp> {
    /// Accept the next connection; blocks. Returns `Disconnected` when the
    /// connector endpoint is gone.
    pub fn accept(&self) -> Result<ServerConn<Req, Resp>, RpcError> {
        self.rx.recv().map_err(|_| RpcError::Disconnected)
    }

    /// Accept with a timeout.
    pub fn accept_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Option<ServerConn<Req, Resp>>, RpcError> {
        match self.rx.recv_timeout(timeout) {
            Ok(c) => Ok(Some(c)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(RpcError::Disconnected),
        }
    }

    /// Fabric-wide instrumentation.
    pub fn stats(&self) -> &Arc<RpcStats> {
        &self.stats
    }

    /// Connections waiting to be accepted (gauge).
    pub fn accept_backlog(&self) -> usize {
        self.rx.len()
    }
}

/// The connector endpoint host agents use to reach a DLFM.
#[derive(Clone)]
pub struct Connector<Req, Resp> {
    tx: Sender<ServerConn<Req, Resp>>,
    stats: Arc<RpcStats>,
}

impl<Req, Resp> Connector<Req, Resp> {
    /// Establish a new connection, to be served by a fresh child agent.
    pub fn connect(&self) -> Result<ClientConn<Req, Resp>, RpcError> {
        // Rendezvous request channel: sends block until the agent receives.
        let (tx, rx) = bounded(0);
        self.tx.send(ServerConn { rx }).map_err(|_| RpcError::Disconnected)?;
        Ok(ClientConn { tx, stats: self.stats.clone() })
    }

    /// Fabric-wide instrumentation (shared with the listener and every
    /// connection).
    pub fn stats(&self) -> &Arc<RpcStats> {
        &self.stats
    }

    /// Connections waiting to be accepted (gauge).
    pub fn accept_backlog(&self) -> usize {
        self.tx.len()
    }
}

/// Create a listener/connector pair (one per DLFM instance).
pub fn fabric<Req, Resp>() -> (Listener<Req, Resp>, Connector<Req, Resp>) {
    let (tx, rx) = bounded(64);
    let stats = Arc::new(RpcStats::default());
    (Listener { rx, stats: stats.clone() }, Connector { tx, stats })
}

/// Handle to a running server (main daemon + child agents).
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Child agents spawned so far (diagnostics; matches the paper's
    /// "separate child agent per connection" process model).
    pub agents_spawned: Arc<AtomicU64>,
}

impl ServerHandle {
    /// Ask the main daemon and all child agents to stop, then join the
    /// accept loop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run a main daemon: accept connections and spawn one child-agent thread
/// per connection. `factory` builds the per-connection handler, which is
/// invoked once per request.
pub fn serve<Req, Resp, H, F>(listener: Listener<Req, Resp>, mut factory: F) -> ServerHandle
where
    Req: Send + 'static,
    Resp: Send + 'static,
    H: FnMut(Req, ReplySlot<Resp>) + Send + 'static,
    F: FnMut() -> H + Send + 'static,
{
    let shutdown = Arc::new(AtomicBool::new(false));
    let agents = Arc::new(AtomicU64::new(0));
    let sd = shutdown.clone();
    let ag = agents.clone();
    let accept_thread = std::thread::spawn(move || {
        while !sd.load(Ordering::SeqCst) {
            match listener.accept_timeout(Duration::from_millis(20)) {
                Ok(Some(conn)) => {
                    ag.fetch_add(1, Ordering::Relaxed);
                    let mut handler = factory();
                    let child_sd = sd.clone();
                    std::thread::spawn(move || loop {
                        if child_sd.load(Ordering::SeqCst) {
                            break;
                        }
                        match conn.recv_timeout(Duration::from_millis(20)) {
                            Ok(Some((req, slot))) => handler(req, slot),
                            Ok(None) => continue,
                            Err(_) => break,
                        }
                    });
                }
                Ok(None) => continue,
                Err(_) => break,
            }
        }
    });
    ServerHandle { shutdown, accept_thread: Some(accept_thread), agents_spawned: agents }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn call_roundtrip() {
        let (listener, connector) = fabric::<i32, i32>();
        let mut handle = serve(listener, || |req: i32, slot: ReplySlot<i32>| slot.send(req * 2));
        let conn = connector.connect().unwrap();
        assert_eq!(conn.call(21).unwrap(), 42);
        assert_eq!(conn.call(5).unwrap(), 10);
        handle.shutdown();
    }

    #[test]
    fn each_connection_gets_its_own_agent() {
        let (listener, connector) = fabric::<i32, i32>();
        let handle = serve(listener, || {
            // Per-agent state: a counter proving requests stay on one agent.
            let mut count = 0;
            move |_req: i32, slot: ReplySlot<i32>| {
                count += 1;
                slot.send(count)
            }
        });
        let c1 = connector.connect().unwrap();
        let c2 = connector.connect().unwrap();
        assert_eq!(c1.call(0).unwrap(), 1);
        assert_eq!(c1.call(0).unwrap(), 2);
        assert_eq!(c2.call(0).unwrap(), 1, "second connection has a fresh agent");
        // Give the accept loop a moment to register both agents.
        thread::sleep(Duration::from_millis(50));
        assert_eq!(handle.agents_spawned.load(Ordering::Relaxed), 2);
        drop(handle);
    }

    #[test]
    fn send_blocks_while_agent_is_busy() {
        // The §4 scenario: a posted (async) commit keeps the agent busy and
        // the next synchronous call blocks on message send.
        let (listener, connector) = fabric::<&'static str, &'static str>();
        let mut handle = serve(listener, || {
            |req: &'static str, slot: ReplySlot<&'static str>| {
                if req == "commit" {
                    thread::sleep(Duration::from_millis(200));
                }
                slot.send("done");
            }
        });
        let conn = connector.connect().unwrap();
        conn.post("commit").unwrap();
        let started = std::time::Instant::now();
        // The agent is mid-commit and has not issued its receive, so this
        // send blocks until it finishes.
        assert_eq!(conn.call("link").unwrap(), "done");
        assert!(
            started.elapsed() >= Duration::from_millis(150),
            "call should have blocked behind the in-flight commit"
        );
        handle.shutdown();
    }

    #[test]
    fn call_timeout_fires_when_agent_stalls() {
        let (listener, connector) = fabric::<u8, u8>();
        let mut handle = serve(listener, || {
            |_req: u8, slot: ReplySlot<u8>| {
                thread::sleep(Duration::from_millis(300));
                slot.send(0);
            }
        });
        let conn = connector.connect().unwrap();
        conn.post(0).unwrap(); // occupy the agent
        let err = conn.call_timeout(1, Duration::from_millis(50)).unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        handle.shutdown();
    }

    #[test]
    fn disconnect_reported() {
        let (listener, connector) = fabric::<u8, u8>();
        let conn = connector.connect().unwrap();
        let server = listener.accept().unwrap();
        drop(server);
        assert_eq!(conn.call(1).unwrap_err(), RpcError::Disconnected);
    }

    #[test]
    fn stats_count_calls_and_blocked_senders() {
        let (listener, connector) = fabric::<u8, u8>();
        let stats = connector.stats().clone();
        let mut handle = serve(listener, || {
            |req: u8, slot: ReplySlot<u8>| {
                if req == 1 {
                    thread::sleep(Duration::from_millis(120));
                }
                slot.send(req)
            }
        });
        let conn = connector.connect().unwrap();
        conn.post(1).unwrap(); // occupy the agent for ~120ms
        let c2 = connector.connect().unwrap();
        let h = thread::spawn(move || c2.call(0).unwrap());
        // While the post is being processed, a second call through a fresh
        // connection proceeds, but a call on the busy connection blocks on
        // send; watch the gauges move.
        let conn2 = connector.connect().unwrap();
        drop(conn2);
        thread::sleep(Duration::from_millis(30));
        let blocked_seen = {
            let busy = thread::spawn(move || conn.call(2).unwrap());
            thread::sleep(Duration::from_millis(30));
            let seen = stats.send_blocked() >= 1;
            assert_eq!(busy.join().unwrap(), 2);
            seen
        };
        assert!(blocked_seen, "sender blocked on rendezvous send must show in the gauge");
        h.join().unwrap();
        assert!(stats.calls() >= 2);
        assert_eq!(stats.posts(), 1);
        assert_eq!(stats.in_flight(), 0, "gauge drains when calls complete");
        assert_eq!(stats.send_blocked(), 0);
        handle.shutdown();
    }

    #[test]
    fn trace_ctx_propagates_to_agent_thread() {
        let (listener, connector) = fabric::<u8, u64>();
        // The handler reports the trace id installed on its thread.
        let mut handle = serve(listener, || {
            |_req: u8, slot: ReplySlot<u64>| {
                let id = obs::trace::current_ctx().map(|c| c.trace_id).unwrap_or(0);
                slot.send(id)
            }
        });
        let conn = connector.connect().unwrap();

        // Without a caller-side context the RPC span starts a fresh trace.
        let agent_side = conn.call(0).unwrap();
        assert_ne!(agent_side, 0, "rpc span should give the agent a trace id");

        // With a root span installed (the host statement boundary), the
        // agent sees that trace id.
        let root = obs::trace::span_root(Layer::Host, "stmt");
        let agent_side = conn.call(0).unwrap();
        assert_eq!(agent_side, root.ctx().trace_id);
        drop(root);
        handle.shutdown();
    }

    #[test]
    fn post_does_not_wait_for_processing() {
        let (listener, connector) = fabric::<u8, u8>();
        let mut handle = serve(listener, || {
            |_req: u8, slot: ReplySlot<u8>| {
                thread::sleep(Duration::from_millis(150));
                slot.send(0);
            }
        });
        let conn = connector.connect().unwrap();
        let started = std::time::Instant::now();
        conn.post(1).unwrap();
        assert!(
            started.elapsed() < Duration::from_millis(100),
            "post should return once the agent receives, not when it finishes"
        );
        handle.shutdown();
    }
}
