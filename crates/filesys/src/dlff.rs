//! DLFF — the DataLinks File System Filter.
//!
//! Sits between applications and the raw [`FileSystem`], enforcing the
//! constraints DLFM applies to linked files (paper §2, §3.5):
//!
//! * rename/delete/move of a linked file is rejected (referential
//!   integrity);
//! * under **full access control** the file is owned by the DLFM
//!   administrative user and read access requires a host-issued token;
//! * under **partial access control** the filter performs an **Upcall** to
//!   DLFM to ask whether the file is linked before allowing a destructive
//!   operation. (Full-control files need no upcall — DLFM ownership already
//!   marks them.)

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::fs::{FileMeta, FileSystem, FsError, FsResult};

/// Link state reported by DLFM through the Upcall interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// File is not under database control.
    NotLinked,
    /// Linked with partial access control (reads uncontrolled).
    LinkedPartial,
    /// Linked with full access control (reads require a token).
    LinkedFull,
}

/// The Upcall interface the DLFM Upcall daemon implements (paper §3.5).
pub trait UpcallHandler: Send + Sync {
    /// Is the file currently linked, and how?
    fn link_state(&self, path: &str) -> LinkState;
}

/// Outcome of a filtered operation attempt (diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessDecision {
    /// Operation allowed through to the file system.
    Allowed,
    /// Rejected because the file is linked.
    DeniedLinked,
    /// Rejected because the access token was missing or invalid.
    DeniedToken,
}

/// The filter. Owns a handle to the raw file system; applications are
/// expected to go through this instead of the raw [`FileSystem`].
pub struct Dlff {
    fs: Arc<FileSystem>,
    upcall: RwLock<Option<Arc<dyn UpcallHandler>>>,
    /// Valid read tokens: (path, token).
    tokens: RwLock<HashSet<(String, String)>>,
    /// Name of the DLFM administrative user; files owned by it are
    /// recognised as fully controlled without an upcall.
    dlfm_admin: String,
    upcall_count: AtomicU64,
}

impl Dlff {
    /// Wrap a file system. `dlfm_admin` is the DLFM administrative user
    /// that full-control takeover transfers ownership to.
    pub fn new(fs: Arc<FileSystem>, dlfm_admin: &str) -> Dlff {
        Dlff {
            fs,
            upcall: RwLock::new(None),
            tokens: RwLock::new(HashSet::new()),
            dlfm_admin: dlfm_admin.to_string(),
            upcall_count: AtomicU64::new(0),
        }
    }

    /// The raw file system underneath (DLFM daemons use it directly).
    pub fn raw(&self) -> &Arc<FileSystem> {
        &self.fs
    }

    /// Install the Upcall handler (done when the DLFM starts).
    pub fn set_upcall(&self, handler: Arc<dyn UpcallHandler>) {
        *self.upcall.write() = Some(handler);
    }

    /// Number of upcalls performed so far.
    pub fn upcalls(&self) -> u64 {
        self.upcall_count.load(Ordering::Relaxed)
    }

    /// Register a host-issued access token for a fully-controlled file.
    pub fn register_token(&self, path: &str, token: &str) {
        self.tokens.write().insert((path.to_string(), token.to_string()));
    }

    /// Invalidate a token (e.g. on unlink).
    pub fn revoke_tokens(&self, path: &str) {
        self.tokens.write().retain(|(p, _)| p != path);
    }

    fn state_of(&self, path: &str, meta: Option<&FileMeta>) -> LinkState {
        // Full control is recognisable from ownership alone; otherwise ask
        // DLFM (the Upcall, needed only for partial control — paper §3.5).
        if let Some(m) = meta {
            if m.owner == self.dlfm_admin {
                return LinkState::LinkedFull;
            }
        }
        let handler = self.upcall.read().clone();
        match handler {
            Some(h) => {
                self.upcall_count.fetch_add(1, Ordering::Relaxed);
                h.link_state(path)
            }
            None => LinkState::NotLinked,
        }
    }

    /// Create a new file (always allowed; new files are never linked).
    pub fn create(&self, path: &str, owner: &str, content: &[u8]) -> FsResult<FileMeta> {
        self.fs.create(path, owner, content)
    }

    /// Read a file. Fully-controlled files require a valid token.
    pub fn read(&self, path: &str, user: &str, token: Option<&str>) -> FsResult<Vec<u8>> {
        let meta = self.fs.stat(path)?;
        if meta.owner == self.dlfm_admin && user != self.dlfm_admin {
            let ok = token
                .map(|t| self.tokens.read().contains(&(path.to_string(), t.to_string())))
                .unwrap_or(false);
            if !ok {
                return Err(FsError::PermissionDenied {
                    path: path.to_string(),
                    op: "read (missing or invalid access token)".into(),
                });
            }
            // Token-authorised reads bypass the user permission check: the
            // filter reads on the application's behalf.
            return self.fs.read(path, &self.dlfm_admin);
        }
        self.fs.read(path, user)
    }

    /// Write a file. Linked files are read-only under full control (the
    /// file-system mode enforces it); partial control leaves content alone.
    pub fn write(&self, path: &str, user: &str, content: &[u8]) -> FsResult<()> {
        self.fs.write(path, user, content)
    }

    /// Delete, rejected for linked files.
    pub fn delete(&self, path: &str, _user: &str) -> FsResult<()> {
        match self.check_destructive(path, "delete")? {
            AccessDecision::Allowed => self.fs.delete(path),
            _ => Err(FsError::FilterRejected { path: path.to_string(), op: "delete".into() }),
        }
    }

    /// Rename/move, rejected for linked files.
    pub fn rename(&self, from: &str, to: &str, _user: &str) -> FsResult<()> {
        match self.check_destructive(from, "rename")? {
            AccessDecision::Allowed => self.fs.rename(from, to),
            _ => Err(FsError::FilterRejected { path: from.to_string(), op: "rename".into() }),
        }
    }

    /// Would a destructive op on `path` be allowed right now?
    pub fn check_destructive(&self, path: &str, _op: &str) -> FsResult<AccessDecision> {
        let meta = self.fs.stat(path)?;
        match self.state_of(path, Some(&meta)) {
            LinkState::NotLinked => Ok(AccessDecision::Allowed),
            LinkState::LinkedPartial | LinkState::LinkedFull => Ok(AccessDecision::DeniedLinked),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedUpcall(LinkState);
    impl UpcallHandler for FixedUpcall {
        fn link_state(&self, _path: &str) -> LinkState {
            self.0
        }
    }

    fn setup(state: LinkState) -> (Arc<FileSystem>, Dlff) {
        let fs = Arc::new(FileSystem::new());
        let dlff = Dlff::new(fs.clone(), "dlfm_admin");
        dlff.set_upcall(Arc::new(FixedUpcall(state)));
        (fs, dlff)
    }

    #[test]
    fn unlinked_files_are_unrestricted() {
        let (_fs, dlff) = setup(LinkState::NotLinked);
        dlff.create("/f", "alice", b"x").unwrap();
        dlff.rename("/f", "/g", "alice").unwrap();
        dlff.delete("/g", "alice").unwrap();
    }

    #[test]
    fn linked_files_cannot_be_deleted_or_renamed() {
        let (_fs, dlff) = setup(LinkState::LinkedPartial);
        dlff.create("/f", "alice", b"x").unwrap();
        assert!(matches!(dlff.delete("/f", "alice"), Err(FsError::FilterRejected { .. })));
        assert!(matches!(dlff.rename("/f", "/g", "alice"), Err(FsError::FilterRejected { .. })));
        // The file is still there.
        assert!(dlff.raw().exists("/f"));
    }

    #[test]
    fn partial_control_uses_upcall_full_control_does_not() {
        let (fs, dlff) = setup(LinkState::LinkedPartial);
        dlff.create("/p", "alice", b"x").unwrap();
        let _ = dlff.delete("/p", "alice");
        assert_eq!(dlff.upcalls(), 1);
        // Full control: owner is dlfm_admin, no upcall needed.
        fs.create("/q", "dlfm_admin", b"y").unwrap();
        let _ = dlff.delete("/q", "alice");
        assert_eq!(dlff.upcalls(), 1, "full-control check must not upcall");
    }

    #[test]
    fn full_control_read_requires_token() {
        let (fs, dlff) = setup(LinkState::NotLinked);
        fs.create("/v", "dlfm_admin", b"secret").unwrap();
        assert!(dlff.read("/v", "alice", None).is_err());
        assert!(dlff.read("/v", "alice", Some("wrong")).is_err());
        dlff.register_token("/v", "tok123");
        assert_eq!(dlff.read("/v", "alice", Some("tok123")).unwrap(), b"secret");
        dlff.revoke_tokens("/v");
        assert!(dlff.read("/v", "alice", Some("tok123")).is_err());
    }

    #[test]
    fn admin_reads_without_token() {
        let (fs, dlff) = setup(LinkState::NotLinked);
        fs.create("/v", "dlfm_admin", b"secret").unwrap();
        assert_eq!(dlff.read("/v", "dlfm_admin", None).unwrap(), b"secret");
    }

    #[test]
    fn no_upcall_handler_means_not_linked() {
        let fs = Arc::new(FileSystem::new());
        let dlff = Dlff::new(fs, "dlfm_admin");
        dlff.create("/f", "alice", b"x").unwrap();
        dlff.delete("/f", "alice").unwrap();
    }
}
