//! # filesys — in-memory file server + DLFF filter
//!
//! The file-server substrate for the DLFM reproduction. The paper's file
//! server is an ordinary (AIX/NT) file system with a kernel filter driver —
//! the **DataLinks File System Filter (DLFF)** — layered on top. This crate
//! provides both:
//!
//! * [`FileSystem`] — a POSIX-flavoured in-memory file system with inodes,
//!   owners, groups, permission bits, and modification times. Crucially it
//!   is **not transactional**: changes are immediate and cannot be rolled
//!   back, which is why DLFM defers file takeover/release to phase 2 of
//!   commit processing (paper §3.2).
//! * [`dlff::Dlff`] — the filter layer that intercepts rename/delete/move
//!   (and reads, under full access control), consulting the DLFM through an
//!   [`dlff::UpcallHandler`] and validating host-issued access tokens.

#![warn(missing_docs)]

pub mod dlff;
pub mod fs;

pub use dlff::{AccessDecision, Dlff, LinkState, UpcallHandler};
pub use fs::{FileMeta, FileSystem, FsError, FsResult, Mode};
