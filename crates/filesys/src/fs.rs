//! A POSIX-flavoured in-memory file system.
//!
//! Paths are absolute, `/`-separated, and normalised. Directories are
//! implicit (created on demand, like object stores) but file metadata is
//! fully modelled: owner, group, mode bits, mtime, fsid/inode — everything
//! the DLFM child agent asks the Chown daemon for (paper §3.5).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

/// Errors from file-system operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound(String),
    /// Path already exists (create/rename target).
    AlreadyExists(String),
    /// Caller lacks permission for the operation.
    PermissionDenied {
        /// Path involved.
        path: String,
        /// What was attempted.
        op: String,
    },
    /// Operation rejected by the DLFF filter (file is linked).
    FilterRejected {
        /// Path involved.
        path: String,
        /// What was attempted.
        op: String,
    },
    /// Malformed path.
    InvalidPath(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            FsError::PermissionDenied { path, op } => {
                write!(f, "permission denied: {op} on {path}")
            }
            FsError::FilterRejected { path, op } => {
                write!(f, "operation rejected by DLFF: {op} on {path} (file is linked)")
            }
            FsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Result alias for file-system calls.
pub type FsResult<T> = Result<T, FsError>;

/// Permission bits (simplified: owner-write and world-read/write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mode {
    /// Owner may write.
    pub owner_write: bool,
    /// Anyone may read.
    pub world_read: bool,
    /// Anyone may write.
    pub world_write: bool,
}

impl Mode {
    /// Typical user file: rw-rw- (owner write, world read+write).
    pub fn user_default() -> Mode {
        Mode { owner_write: true, world_read: true, world_write: true }
    }

    /// Read-only (what DLFM sets after full-control takeover).
    pub fn read_only() -> Mode {
        Mode { owner_write: false, world_read: true, world_write: false }
    }
}

/// Metadata of one file — the answer to a Chown-daemon "get file info"
/// request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// File-system id (one per FileSystem instance).
    pub fsid: u64,
    /// Inode number, unique within the file system.
    pub inode: u64,
    /// Owning user.
    pub owner: String,
    /// Owning group.
    pub group: String,
    /// Permission bits.
    pub mode: Mode,
    /// Last-modification counter (logical clock).
    pub mtime: u64,
    /// Size in bytes.
    pub size: u64,
}

#[derive(Debug, Clone)]
struct File {
    meta: FileMeta,
    content: Vec<u8>,
}

static NEXT_FSID: AtomicU64 = AtomicU64::new(1);

/// An in-memory file system (one per file server).
pub struct FileSystem {
    fsid: u64,
    files: RwLock<HashMap<String, File>>,
    next_inode: AtomicU64,
    clock: AtomicU64,
}

impl Default for FileSystem {
    fn default() -> Self {
        FileSystem::new()
    }
}

impl FileSystem {
    /// Create an empty file system with a fresh fsid.
    pub fn new() -> FileSystem {
        FileSystem {
            fsid: NEXT_FSID.fetch_add(1, Ordering::Relaxed),
            files: RwLock::new(HashMap::new()),
            next_inode: AtomicU64::new(1),
            clock: AtomicU64::new(1),
        }
    }

    /// This file system's id.
    pub fn fsid(&self) -> u64 {
        self.fsid
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Normalise and validate a path.
    pub fn normalize(path: &str) -> FsResult<String> {
        if !path.starts_with('/') || path.contains("//") || path.ends_with('/') {
            return Err(FsError::InvalidPath(path.to_string()));
        }
        if path.split('/').any(|seg| seg == "." || seg == "..") {
            return Err(FsError::InvalidPath(path.to_string()));
        }
        Ok(path.to_string())
    }

    /// Create a file owned by `owner` with default user permissions.
    pub fn create(&self, path: &str, owner: &str, content: &[u8]) -> FsResult<FileMeta> {
        let path = Self::normalize(path)?;
        let mut files = self.files.write();
        if files.contains_key(&path) {
            return Err(FsError::AlreadyExists(path));
        }
        let meta = FileMeta {
            fsid: self.fsid,
            inode: self.next_inode.fetch_add(1, Ordering::Relaxed),
            owner: owner.to_string(),
            group: "users".to_string(),
            mode: Mode::user_default(),
            mtime: self.tick(),
            size: content.len() as u64,
        };
        files.insert(path, File { meta: meta.clone(), content: content.to_vec() });
        Ok(meta)
    }

    /// Does the file exist?
    pub fn exists(&self, path: &str) -> bool {
        Self::normalize(path).map(|p| self.files.read().contains_key(&p)).unwrap_or(false)
    }

    /// Stat a file.
    pub fn stat(&self, path: &str) -> FsResult<FileMeta> {
        let path = Self::normalize(path)?;
        self.files.read().get(&path).map(|f| f.meta.clone()).ok_or(FsError::NotFound(path))
    }

    /// Read file contents, enforcing read permission for `user`.
    pub fn read(&self, path: &str, user: &str) -> FsResult<Vec<u8>> {
        let path = Self::normalize(path)?;
        let files = self.files.read();
        let f = files.get(&path).ok_or_else(|| FsError::NotFound(path.clone()))?;
        if !f.meta.mode.world_read && f.meta.owner != user {
            return Err(FsError::PermissionDenied { path, op: "read".into() });
        }
        Ok(f.content.clone())
    }

    /// Overwrite file contents, enforcing write permission for `user`.
    pub fn write(&self, path: &str, user: &str, content: &[u8]) -> FsResult<()> {
        let path = Self::normalize(path)?;
        let mtime = self.tick();
        let mut files = self.files.write();
        let f = files.get_mut(&path).ok_or_else(|| FsError::NotFound(path.clone()))?;
        let allowed = f.meta.mode.world_write || (f.meta.owner == user && f.meta.mode.owner_write);
        if !allowed {
            return Err(FsError::PermissionDenied { path, op: "write".into() });
        }
        f.content = content.to_vec();
        f.meta.size = f.content.len() as u64;
        f.meta.mtime = mtime;
        Ok(())
    }

    /// Delete a file (no permission model beyond existence — the DLFF layer
    /// is what protects linked files).
    pub fn delete(&self, path: &str) -> FsResult<()> {
        let path = Self::normalize(path)?;
        self.files.write().remove(&path).map(|_| ()).ok_or(FsError::NotFound(path))
    }

    /// Rename/move a file.
    pub fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let from = Self::normalize(from)?;
        let to = Self::normalize(to)?;
        let mtime = self.tick();
        let mut files = self.files.write();
        if files.contains_key(&to) {
            return Err(FsError::AlreadyExists(to));
        }
        let mut f = files.remove(&from).ok_or(FsError::NotFound(from))?;
        f.meta.mtime = mtime;
        files.insert(to, f);
        Ok(())
    }

    /// Change owner (Chown-daemon privilege; no permission check here —
    /// the daemon runs as root, paper §3.5).
    pub fn chown(&self, path: &str, owner: &str, group: &str) -> FsResult<()> {
        let path = Self::normalize(path)?;
        if obs::fault::fire("fs.chown") {
            return Err(FsError::PermissionDenied { path, op: "injected: chown".into() });
        }
        let mut files = self.files.write();
        let f = files.get_mut(&path).ok_or_else(|| FsError::NotFound(path.clone()))?;
        f.meta.owner = owner.to_string();
        f.meta.group = group.to_string();
        Ok(())
    }

    /// Change permission bits (Chown-daemon privilege).
    pub fn chmod(&self, path: &str, mode: Mode) -> FsResult<()> {
        let path = Self::normalize(path)?;
        if obs::fault::fire("fs.chmod") {
            return Err(FsError::PermissionDenied { path, op: "injected: chmod".into() });
        }
        let mut files = self.files.write();
        let f = files.get_mut(&path).ok_or_else(|| FsError::NotFound(path.clone()))?;
        f.meta.mode = mode;
        Ok(())
    }

    /// List all paths under a prefix (diagnostics / reconcile scans).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let files = self.files.read();
        let mut out: Vec<String> =
            files.keys().filter(|p| p.starts_with(prefix)).cloned().collect();
        out.sort();
        out
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.read().len()
    }

    /// True when no files exist.
    pub fn is_empty(&self) -> bool {
        self.files.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_stat_read_write() {
        let fs = FileSystem::new();
        let meta = fs.create("/data/a.mpg", "alice", b"hello").unwrap();
        assert_eq!(meta.owner, "alice");
        assert_eq!(meta.size, 5);
        assert_eq!(fs.read("/data/a.mpg", "bob").unwrap(), b"hello");
        fs.write("/data/a.mpg", "alice", b"world!").unwrap();
        let meta2 = fs.stat("/data/a.mpg").unwrap();
        assert_eq!(meta2.size, 6);
        assert!(meta2.mtime > meta.mtime);
        assert_eq!(meta2.inode, meta.inode);
    }

    #[test]
    fn create_duplicate_rejected() {
        let fs = FileSystem::new();
        fs.create("/a", "u", b"").unwrap();
        assert!(matches!(fs.create("/a", "u", b""), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn path_validation() {
        let fs = FileSystem::new();
        assert!(matches!(fs.create("rel/path", "u", b""), Err(FsError::InvalidPath(_))));
        assert!(matches!(fs.create("/a//b", "u", b""), Err(FsError::InvalidPath(_))));
        assert!(matches!(fs.create("/a/../b", "u", b""), Err(FsError::InvalidPath(_))));
        assert!(matches!(fs.create("/a/", "u", b""), Err(FsError::InvalidPath(_))));
    }

    #[test]
    fn read_only_mode_blocks_writes() {
        let fs = FileSystem::new();
        fs.create("/f", "alice", b"x").unwrap();
        fs.chmod("/f", Mode::read_only()).unwrap();
        // Even the owner cannot write once DLFM marks it read-only.
        assert!(matches!(fs.write("/f", "alice", b"y"), Err(FsError::PermissionDenied { .. })));
        assert_eq!(fs.read("/f", "bob").unwrap(), b"x");
    }

    #[test]
    fn chown_transfers_ownership() {
        let fs = FileSystem::new();
        fs.create("/f", "alice", b"x").unwrap();
        fs.chown("/f", "dlfm_admin", "dlfm").unwrap();
        let m = fs.stat("/f").unwrap();
        assert_eq!(m.owner, "dlfm_admin");
        assert_eq!(m.group, "dlfm");
    }

    #[test]
    fn rename_and_delete() {
        let fs = FileSystem::new();
        fs.create("/a", "u", b"1").unwrap();
        fs.rename("/a", "/b").unwrap();
        assert!(!fs.exists("/a"));
        assert!(fs.exists("/b"));
        fs.create("/c", "u", b"2").unwrap();
        assert!(matches!(fs.rename("/b", "/c"), Err(FsError::AlreadyExists(_))));
        fs.delete("/b").unwrap();
        assert!(matches!(fs.delete("/b"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn distinct_fsids_and_inodes() {
        let a = FileSystem::new();
        let b = FileSystem::new();
        assert_ne!(a.fsid(), b.fsid());
        let m1 = a.create("/x", "u", b"").unwrap();
        let m2 = a.create("/y", "u", b"").unwrap();
        assert_ne!(m1.inode, m2.inode);
    }

    #[test]
    fn list_by_prefix() {
        let fs = FileSystem::new();
        fs.create("/video/a.mpg", "u", b"").unwrap();
        fs.create("/video/b.mpg", "u", b"").unwrap();
        fs.create("/audio/c.mp3", "u", b"").unwrap();
        assert_eq!(fs.list("/video/").len(), 2);
        assert_eq!(fs.list("/").len(), 3);
    }
}
