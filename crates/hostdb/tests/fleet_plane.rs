//! The fleet telemetry plane end to end over real sockets: per-shard
//! scraping with DOWN degradation, the per-shard-skew watchdog rule fed
//! by wire-scraped providers, and the per-transaction autopsy bundles.
//!
//! Kept in its own integration-test binary: autopsy bundles read the
//! process-global span ring, so the tests serialize on a mutex to keep
//! each one's window clean.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use archive::ArchiveServer;
use dlfm::{AccessControl, DlfmConfig, DlfmServer, TelemetryKind, Transport};
use filesys::FileSystem;
use hostdb::{DatalinkSpec, HostConfig, HostDb};
use minidb::Value;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A scratch directory that starts empty.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dlfm-fleet-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One wire-listening DLFM on a fresh loopback TCP port.
fn wire_dlfm() -> (Arc<FileSystem>, DlfmServer) {
    let fs = Arc::new(FileSystem::new());
    let mut config = DlfmConfig::for_tests();
    config.listen = Transport::Tcp("127.0.0.1:0".into());
    let dlfm = DlfmServer::start(config, fs.clone(), Arc::new(ArchiveServer::new()));
    (fs, dlfm)
}

fn attach(host: &HostDb, name: &str, dlfm: &DlfmServer) {
    host.attach_dlfm_url(name, &dlfm.listen_addr().unwrap().to_string()).unwrap();
}

fn make_table(host: &HostDb) -> hostdb::HostSession {
    let mut s = host.session();
    s.create_table(
        "CREATE TABLE docs (id BIGINT NOT NULL, doc DATALINK)",
        &[DatalinkSpec { column: "doc".into(), access: AccessControl::Full, recovery: false }],
    )
    .unwrap();
    s
}

/// The only bundle directory under `root` (asserts there is exactly one).
fn only_bundle(root: &PathBuf) -> PathBuf {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(root).unwrap().map(|e| e.unwrap().path()).collect();
    assert_eq!(entries.len(), 1, "expected exactly one autopsy bundle: {entries:?}");
    entries.pop().unwrap()
}

#[test]
fn slow_wire_transaction_writes_a_cross_process_autopsy_bundle() {
    let _g = serial();
    let (fs, dlfm) = wire_dlfm();
    let dir = scratch("slow");
    let mut config = HostConfig::for_tests();
    config.autopsy_dir = Some(dir.clone());
    config.autopsy_slow = Duration::ZERO; // every commit counts as slow
    let host = HostDb::new(config);
    attach(&host, "fs1", &dlfm);
    let mut s = make_table(&host);

    fs.create("/slow", "u", b"x").unwrap();
    s.begin().unwrap();
    s.exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/slow")])
        .unwrap();
    s.commit().unwrap();

    let bundle = only_bundle(&dir);
    assert!(
        bundle.file_name().unwrap().to_string_lossy().starts_with("autopsy-0000-xid"),
        "bundle dir is sequence-numbered and names the xid: {bundle:?}"
    );
    let report = std::fs::read_to_string(bundle.join("report.txt")).unwrap();
    assert!(report.contains("outcome: slow-commit"), "report:\n{report}");
    assert!(report.contains("span tree:"), "report:\n{report}");
    // The tree stitched spans from the remote daemon into the host's —
    // the remote process label only appears when the wire scrape worked.
    assert!(report.contains("dlfm[fs1]"), "report must show remote spans:\n{report}");
    assert!(report.contains("LinkFile"), "report must show the remote agent's work:\n{report}");
    let trace = std::fs::read_to_string(bundle.join("trace.json")).unwrap();
    assert!(obs::json_is_well_formed(&trace), "autopsy trace.json must be well-formed");
    assert!(bundle.join("journal.txt").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aborted_transaction_writes_an_autopsy_bundle() {
    let _g = serial();
    let (fs, dlfm) = wire_dlfm();
    let dir = scratch("abort");
    let mut config = HostConfig::for_tests();
    config.autopsy_dir = Some(dir.clone());
    config.autopsy_slow = Duration::from_secs(3600); // only the abort path
    let host = HostDb::new(config);
    attach(&host, "fs1", &dlfm);
    let mut s = make_table(&host);

    fs.create("/doomed", "u", b"x").unwrap();
    s.begin().unwrap();
    s.exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/doomed")])
        .unwrap();
    s.rollback();

    let report = std::fs::read_to_string(only_bundle(&dir).join("report.txt")).unwrap();
    assert!(report.contains("outcome: aborted"), "report:\n{report}");
    assert_eq!(host.metrics().autopsies.load(std::sync::atomic::Ordering::Relaxed), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn autopsy_bundles_are_capped() {
    let _g = serial();
    let (fs, dlfm) = wire_dlfm();
    let dir = scratch("cap");
    let mut config = HostConfig::for_tests();
    config.autopsy_dir = Some(dir.clone());
    config.autopsy_slow = Duration::ZERO;
    config.autopsy_max = 2;
    let host = HostDb::new(config);
    attach(&host, "fs1", &dlfm);
    let mut s = make_table(&host);

    for i in 0..4i64 {
        let path = format!("/cap{i}");
        fs.create(&path, "u", b"x").unwrap();
        s.exec_params(
            "INSERT INTO docs (id, doc) VALUES (?, ?)",
            &[Value::Int(i), Value::str(format!("dlfs://fs1{path}"))],
        )
        .unwrap();
    }
    let bundles = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(bundles, 2, "the bundle cap bounds disk usage on a pathological day");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_telemetry_reports_down_shard_as_none() {
    let _g = serial();
    let (_fs, dlfm) = wire_dlfm();
    let host = HostDb::new(HostConfig::for_tests());
    attach(&host, "alive", &dlfm);
    // tcp/unix attaches are lazy, so attaching a daemon that isn't there
    // succeeds — it just scrapes as DOWN.
    host.attach_dlfm_url("dead", "unix:///tmp/dlfm-fleet-no-such-daemon.sock").unwrap();

    let scraped = host.fleet_telemetry(TelemetryKind::Metrics);
    assert_eq!(scraped.len(), 2);
    let get = |name: &str| scraped.iter().find(|(s, _)| s == name).unwrap().1.clone();
    assert!(get("alive").is_some_and(|t| t.contains("dlfm_")), "live shard scrapes metrics");
    assert!(get("dead").is_none(), "dead shard scrapes as None, not an error");
    assert!(
        host.metrics().telemetry_scrape_errors.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "the failed scrape is counted"
    );
}

#[test]
fn fleet_watchdog_skew_rule_flags_the_hot_shard() {
    let _g = serial();
    let stacks: Vec<(Arc<FileSystem>, DlfmServer)> = (0..3).map(|_| wire_dlfm()).collect();
    let host = HostDb::new(HostConfig::for_tests());
    for (i, (_, dlfm)) in stacks.iter().enumerate() {
        attach(&host, &format!("shard{i}"), dlfm);
    }
    let mut s = make_table(&host);

    // One link on each cold shard, a pile on shard0 (URL routing: the
    // server name in the datalink URL picks the daemon).
    for (i, (fs, _)) in stacks.iter().enumerate() {
        let links = if i == 0 { 20 } else { 1 };
        for j in 0..links {
            let path = format!("/skew{j}");
            if j == 0 || i == 0 {
                fs.create(&path, "u", b"x").unwrap();
            }
            s.exec_params(
                "INSERT INTO docs (id, doc) VALUES (?, ?)",
                &[Value::Int((i * 100 + j) as i64), Value::str(format!("dlfs://shard{i}{path}"))],
            )
            .unwrap();
        }
    }

    // The fleet watchdog scrapes every daemon over the telemetry RPC; the
    // skew rule compares each shard's link count against the ring median.
    let w = host
        .fleet_watchdog(obs::WatchConfig {
            interval: Duration::from_millis(10),
            rules: vec![obs::Rule::skew("fleet-link-skew", "dlfm_ops_total", 3.0, 10.0, 1)],
            ..Default::default()
        })
        .manual();
    w.sample_now();
    assert_eq!(w.alerts(), 1, "shard0 is a 20x link outlier and must trip the skew rule");
}
