//! End-to-end trace propagation: a trace id allocated at the host
//! statement boundary must ride the RPC envelope into the DLFM agent and
//! appear on the spans its local database emits.
//!
//! Kept in its own integration-test binary so the process-global span
//! ring holds only this test's spans.

use std::sync::Arc;

use archive::ArchiveServer;
use dlfm::{AccessControl, DlfmConfig, DlfmServer};
use filesys::FileSystem;
use hostdb::{DatalinkSpec, HostConfig, HostDb};
use minidb::Value;
use obs::Layer;

#[test]
fn host_trace_id_reaches_minidb_spans_through_the_dlfm_agent() {
    let fs = Arc::new(FileSystem::new());
    let dlfm =
        DlfmServer::start(DlfmConfig::for_tests(), fs.clone(), Arc::new(ArchiveServer::new()));
    let host = HostDb::new(HostConfig::for_tests());
    host.attach_dlfm("fs1", dlfm.connector());
    let mut s = host.session();
    s.create_table(
        "CREATE TABLE docs (id BIGINT NOT NULL, doc DATALINK)",
        &[DatalinkSpec { column: "doc".into(), access: AccessControl::Full, recovery: false }],
    )
    .unwrap();
    fs.create("/traced", "u", b"x").unwrap();

    // Setup produced spans of its own; start the measured window clean.
    obs::drain_spans();

    // One autocommit INSERT: host stmt -> rpc -> agent LinkFile ->
    // DLFM-local SQL, then host commit -> Prepare/Commit on the agent.
    s.exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/traced")])
        .unwrap();

    let spans = obs::drain_spans();
    let host_roots: Vec<_> = spans
        .iter()
        .filter(|e| e.layer == Layer::Host && e.op == "stmt" && e.parent_span_id == 0)
        .collect();
    assert_eq!(host_roots.len(), 1, "one host statement, one root span: {spans:#?}");
    let trace = host_roots[0].trace_id;

    // The trace crossed the RPC fabric: a DLFM agent span carries it.
    let agent: Vec<_> =
        spans.iter().filter(|e| e.layer == Layer::Dlfm && e.trace_id == trace).collect();
    assert!(
        agent.iter().any(|e| e.op == "LinkFile"),
        "expected a Dlfm LinkFile span under trace {trace:#x}: {agent:#?}"
    );

    // ... and reached the DLFM's local database: a Minidb span both
    // carries the trace id and hangs off an agent span, so it cannot be
    // one of the host database's own spans.
    let agent_span_ids: Vec<u64> = agent.iter().map(|e| e.span_id).collect();
    assert!(
        spans.iter().any(|e| e.layer == Layer::Minidb
            && e.trace_id == trace
            && agent_span_ids.contains(&e.parent_span_id)),
        "expected a Minidb span parented under a Dlfm agent span: {spans:#?}"
    );
}
