//! End-to-end trace propagation: a trace id allocated at the host
//! statement boundary must ride the RPC envelope into the DLFM agent and
//! appear on the spans its local database emits.
//!
//! Kept in its own integration-test binary so the process-global span
//! ring holds only this test's spans.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use archive::ArchiveServer;
use dlfm::{AccessControl, DlfmConfig, DlfmServer, TelemetryKind, Transport};
use filesys::FileSystem;
use hostdb::{DatalinkSpec, HostConfig, HostDb};
use minidb::Value;
use obs::Layer;

/// The span ring is process-global and `drain_spans` consumes it, so the
/// tests in this binary must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// File server + wire-listening DLFM + host attached by URL: every RPC
/// crosses the frame codec and a kernel socket.
fn wire_stack(listen: Transport) -> (Arc<FileSystem>, DlfmServer, HostDb) {
    let fs = Arc::new(FileSystem::new());
    let mut config = DlfmConfig::for_tests();
    config.listen = listen;
    let dlfm = DlfmServer::start(config, fs.clone(), Arc::new(ArchiveServer::new()));
    let url = dlfm.listen_addr().expect("wire transport binds").to_string();
    let host = HostDb::new(HostConfig::for_tests());
    host.attach_dlfm_url("fs1", &url).expect("attach by URL");
    (fs, dlfm, host)
}

/// One linked insert over `listen`; asserts the host statement's trace id
/// shows up on the rpc client span, on the remote agent's `LinkFile`
/// span, and in the span dump the daemon serves over the telemetry RPC.
fn assert_wire_propagation(listen: Transport) {
    let (fs, _dlfm, host) = wire_stack(listen);
    let mut s = host.session();
    s.create_table(
        "CREATE TABLE docs (id BIGINT NOT NULL, doc DATALINK)",
        &[DatalinkSpec { column: "doc".into(), access: AccessControl::Full, recovery: false }],
    )
    .unwrap();
    fs.create("/traced", "u", b"x").unwrap();
    obs::drain_spans();

    s.exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/traced")])
        .unwrap();

    // The daemon's own span dump (served over the telemetry RPC, exactly
    // what a fleet merge consumes) must carry the host trace.
    let dump = host.fetch_telemetry("fs1", TelemetryKind::Spans).expect("span dump over wire");
    let spans = obs::drain_spans();
    let root = spans
        .iter()
        .find(|e| e.layer == Layer::Host && e.op == "stmt" && e.parent_span_id == 0)
        .expect("host statement root span");
    let trace = root.trace_id;

    assert!(
        spans.iter().any(|e| e.layer == Layer::Rpc && e.trace_id == trace),
        "expected an rpc client span under trace {trace:#x}: {spans:#?}"
    );
    assert!(
        spans.iter().any(|e| e.layer == Layer::Dlfm && e.trace_id == trace && e.op == "LinkFile"),
        "expected the remote agent's LinkFile span to share trace {trace:#x}: {spans:#?}"
    );
    let remote = obs::parse_span_dump(&dump);
    assert!(
        remote.iter().any(|r| r.trace_id == trace && r.op == "LinkFile"),
        "daemon's telemetry span dump must carry the host trace {trace:#x}"
    );
}

#[test]
fn wire_trace_id_reaches_remote_agent_over_tcp() {
    let _g = serial();
    assert_wire_propagation(Transport::Tcp("127.0.0.1:0".into()));
}

#[test]
fn wire_trace_id_reaches_remote_agent_over_unix() {
    let _g = serial();
    let path = std::env::temp_dir()
        .join(format!("dlfm-traceprop-{}.sock", std::process::id()))
        .display()
        .to_string();
    let _ = std::fs::remove_file(&path);
    assert_wire_propagation(Transport::Unix(path));
}

#[test]
fn wire_trace_survives_daemon_restart_and_redial() {
    let _g = serial();
    let path = std::env::temp_dir()
        .join(format!("dlfm-redial-{}.sock", std::process::id()))
        .display()
        .to_string();
    let _ = std::fs::remove_file(&path);
    let (fs, dlfm_a, host) = wire_stack(Transport::Unix(path.clone()));
    let mut s = host.session();
    s.create_table(
        "CREATE TABLE docs (id BIGINT NOT NULL, doc DATALINK)",
        &[DatalinkSpec { column: "doc".into(), access: AccessControl::Full, recovery: false }],
    )
    .unwrap();
    fs.create("/before", "u", b"x").unwrap();
    s.exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/before")])
        .unwrap();
    drop(s);

    // Kill the daemon and bring a fresh one up on the same socket path.
    // The host's pooled connections are now talking to a corpse; the next
    // checkout must retire them and redial.
    drop(dlfm_a);
    let _ = std::fs::remove_file(&path);
    let mut config = DlfmConfig::for_tests();
    config.listen = Transport::Unix(path);
    let _dlfm_b = DlfmServer::start(config, fs.clone(), Arc::new(ArchiveServer::new()));

    let retired_before = host.metrics().conn_retired.load(std::sync::atomic::Ordering::Relaxed);
    let mut s = host.session();
    // A second table: the restarted daemon has an empty local database,
    // so this registers a fresh group with it.
    s.create_table(
        "CREATE TABLE docs2 (id BIGINT NOT NULL, doc DATALINK)",
        &[DatalinkSpec { column: "doc".into(), access: AccessControl::Full, recovery: false }],
    )
    .unwrap();
    fs.create("/after", "u", b"x").unwrap();
    obs::drain_spans();
    s.exec_params("INSERT INTO docs2 (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/after")])
        .unwrap();

    let spans = obs::drain_spans();
    let root = spans
        .iter()
        .find(|e| e.layer == Layer::Host && e.op == "stmt" && e.parent_span_id == 0)
        .expect("host statement root span after redial");
    let trace = root.trace_id;
    assert!(
        spans.iter().any(|e| e.layer == Layer::Dlfm && e.trace_id == trace && e.op == "LinkFile"),
        "after the redial the new daemon's LinkFile span must share trace {trace:#x}"
    );
    let retired_after = host.metrics().conn_retired.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        retired_after > retired_before,
        "the dead daemon's pooled connections must have been retired \
         ({retired_before} -> {retired_after}), or this test exercised no redial"
    );
}

#[test]
fn merged_fleet_trace_is_well_formed_and_spans_two_processes() {
    let _g = serial();
    let (fs, _dlfm, host) = wire_stack(Transport::Tcp("127.0.0.1:0".into()));
    let mut s = host.session();
    s.create_table(
        "CREATE TABLE docs (id BIGINT NOT NULL, doc DATALINK)",
        &[DatalinkSpec { column: "doc".into(), access: AccessControl::Full, recovery: false }],
    )
    .unwrap();
    fs.create("/merged", "u", b"x").unwrap();
    obs::drain_spans();
    s.exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/merged")])
        .unwrap();

    let remotes = host.fleet_remote_traces();
    assert_eq!(remotes.len(), 1, "one attached daemon, one remote process trace");
    assert_eq!(remotes[0].name, "dlfm[fs1]");
    assert!(!remotes[0].spans.is_empty(), "remote process trace must carry spans");

    let trace = host.fleet_trace();
    assert!(obs::json_is_well_formed(&trace), "merged fleet trace must be well-formed JSON");
    assert!(
        trace.contains("dlfm[fs1]"),
        "merged trace must name the remote process: {}",
        &trace[..trace.len().min(400)]
    );
    assert!(trace.contains("\"traceEvents\""));
}

#[test]
fn cross_shard_2pc_commit_is_one_trace() {
    let _g = serial();
    // Two wire daemons, each with a private file server; the host routes
    // by path hash once the shard ring is on.
    let fs_a = Arc::new(FileSystem::new());
    let mut config = DlfmConfig::for_tests();
    config.listen = Transport::Tcp("127.0.0.1:0".into());
    let dlfm_a = DlfmServer::start(config, fs_a.clone(), Arc::new(ArchiveServer::new()));
    let fs_b = Arc::new(FileSystem::new());
    let mut config = DlfmConfig::for_tests();
    config.listen = Transport::Tcp("127.0.0.1:0".into());
    let dlfm_b = DlfmServer::start(config, fs_b.clone(), Arc::new(ArchiveServer::new()));

    let host = HostDb::new(HostConfig::for_tests());
    host.attach_dlfm_url("sa", &dlfm_a.listen_addr().unwrap().to_string()).unwrap();
    host.attach_dlfm_url("sb", &dlfm_b.listen_addr().unwrap().to_string()).unwrap();
    host.set_shards(&["sa", "sb"]).unwrap();

    let mut s = host.session();
    s.create_table(
        "CREATE TABLE docs (id BIGINT NOT NULL, doc DATALINK)",
        &[DatalinkSpec { column: "doc".into(), access: AccessControl::Full, recovery: false }],
    )
    .unwrap();

    // Find one path routed to each shard; the ring places whole
    // directories, so vary the directory, and seed each path on both file
    // servers so either daemon can take it.
    let map = host.shard_map();
    let mut per_shard: std::collections::BTreeMap<String, String> = Default::default();
    for i in 0..1024 {
        let path = format!("/dir{i}/file");
        let shard = map
            .route(&path, map.epoch(), Duration::from_secs(5))
            .unwrap()
            .expect("ring is enabled")
            .shard;
        per_shard.entry(shard).or_insert_with(|| path.clone());
        if per_shard.len() == 2 {
            break;
        }
    }
    for path in per_shard.values() {
        fs_a.create(path, "u", b"x").unwrap();
        fs_b.create(path, "u", b"x").unwrap();
    }

    obs::drain_spans();
    s.begin().unwrap();
    for (i, path) in per_shard.values().enumerate() {
        s.exec_params(
            "INSERT INTO docs (id, doc) VALUES (?, ?)",
            &[Value::Int(i as i64), Value::str(format!("dlfs://sa{path}"))],
        )
        .unwrap();
    }
    s.commit().unwrap();

    let spans = obs::drain_spans();
    let commit = spans
        .iter()
        .find(|e| e.layer == Layer::Host && e.op == "commit")
        .expect("host commit span");
    let trace = commit.trace_id;
    let under = |layer: Layer, op: &str| {
        spans.iter().filter(|e| e.layer == layer && e.trace_id == trace && e.op == op).count()
    };
    // Phase 1 and phase 2 ran on BOTH remote agents under the commit's
    // trace — the whole cross-shard 2PC is one coherent trace.
    assert_eq!(under(Layer::Dlfm, "Prepare"), 2, "one Prepare per shard: {spans:#?}");
    assert_eq!(under(Layer::Dlfm, "Commit"), 2, "one Commit per shard: {spans:#?}");
    assert!(
        spans.iter().any(|e| e.layer == Layer::Rpc && e.trace_id == trace),
        "2PC rpc calls must ride the commit trace"
    );
    // The DLFM side did real SQL under the same trace (lock/WAL activity
    // shows up as minidb spans parented under the agents).
    assert!(
        spans.iter().any(|e| e.layer == Layer::Minidb && e.trace_id == trace),
        "remote local-database spans must share the commit trace"
    );
}

#[test]
fn host_trace_id_reaches_minidb_spans_through_the_dlfm_agent() {
    let _g = serial();
    let fs = Arc::new(FileSystem::new());
    let dlfm =
        DlfmServer::start(DlfmConfig::for_tests(), fs.clone(), Arc::new(ArchiveServer::new()));
    let host = HostDb::new(HostConfig::for_tests());
    host.attach_dlfm("fs1", dlfm.connector());
    let mut s = host.session();
    s.create_table(
        "CREATE TABLE docs (id BIGINT NOT NULL, doc DATALINK)",
        &[DatalinkSpec { column: "doc".into(), access: AccessControl::Full, recovery: false }],
    )
    .unwrap();
    fs.create("/traced", "u", b"x").unwrap();

    // Setup produced spans of its own; start the measured window clean.
    obs::drain_spans();

    // One autocommit INSERT: host stmt -> rpc -> agent LinkFile ->
    // DLFM-local SQL, then host commit -> Prepare/Commit on the agent.
    s.exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/traced")])
        .unwrap();

    let spans = obs::drain_spans();
    let host_roots: Vec<_> = spans
        .iter()
        .filter(|e| e.layer == Layer::Host && e.op == "stmt" && e.parent_span_id == 0)
        .collect();
    assert_eq!(host_roots.len(), 1, "one host statement, one root span: {spans:#?}");
    let trace = host_roots[0].trace_id;

    // The trace crossed the RPC fabric: a DLFM agent span carries it.
    let agent: Vec<_> =
        spans.iter().filter(|e| e.layer == Layer::Dlfm && e.trace_id == trace).collect();
    assert!(
        agent.iter().any(|e| e.op == "LinkFile"),
        "expected a Dlfm LinkFile span under trace {trace:#x}: {agent:#?}"
    );

    // ... and reached the DLFM's local database: a Minidb span both
    // carries the trace id and hangs off an agent span, so it cannot be
    // one of the host database's own spans.
    let agent_span_ids: Vec<u64> = agent.iter().map(|e| e.span_id).collect();
    assert!(
        spans.iter().any(|e| e.layer == Layer::Minidb
            && e.trace_id == trace
            && agent_span_ids.contains(&e.parent_span_id)),
        "expected a Minidb span parented under a Dlfm agent span: {spans:#?}"
    );
}
