//! Host-database behaviour tests: datalink-engine interception, 2PC
//! bookkeeping, indoubt resolution, utilities.

use std::sync::Arc;

use archive::ArchiveServer;
use dlfm::{AccessControl, DlfmConfig, DlfmServer};
use filesys::FileSystem;
use hostdb::{DatalinkSpec, HostConfig, HostDb, HostError};
use minidb::Value;

struct Rig {
    fs: Arc<FileSystem>,
    dlfm: DlfmServer,
    host: HostDb,
}

fn rig() -> Rig {
    let fs = Arc::new(FileSystem::new());
    let dlfm =
        DlfmServer::start(DlfmConfig::for_tests(), fs.clone(), Arc::new(ArchiveServer::new()));
    let host = HostDb::new(HostConfig::for_tests());
    host.attach_dlfm("fs1", dlfm.connector());
    Rig { fs, dlfm, host }
}

fn with_table(r: &Rig) -> hostdb::HostSession {
    let mut s = r.host.session();
    s.create_table(
        "CREATE TABLE docs (id BIGINT NOT NULL, doc DATALINK)",
        &[DatalinkSpec { column: "doc".into(), access: AccessControl::Full, recovery: false }],
    )
    .unwrap();
    s
}

#[test]
fn recovery_ids_are_monotonic_and_carry_the_dbid() {
    let r = rig();
    let a = r.host.next_rec_id();
    let b = r.host.next_rec_id();
    let c = r.host.next_rec_id();
    assert!(a < b && b < c);
    assert_eq!(a >> 48, r.host.dbid());
    assert!(r.host.current_rec_id() >= c);
}

#[test]
fn xids_are_monotonic() {
    let r = rig();
    let a = r.host.next_xid();
    let b = r.host.next_xid();
    assert!(b > a);
}

#[test]
fn datalink_column_registration_round_trips() {
    let r = rig();
    let _s = with_table(&r);
    let info = r.host.dl_column("docs", "doc").expect("registered");
    assert_eq!(info.access, AccessControl::Full);
    assert!(!info.recovery);
    assert!(r.host.dl_column("docs", "id").is_none());
    assert!(r.host.dl_column("nope", "doc").is_none());
    assert_eq!(r.host.dl_columns_of("docs").len(), 1);
}

#[test]
fn bad_urls_are_rejected_before_any_side_effect() {
    let r = rig();
    let mut s = with_table(&r);
    for bad in ["http://x/y", "dlfs://nopath", "dlfs:///p", "dlfs://unknown_server/p"] {
        let e = s
            .exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str(bad)])
            .unwrap_err();
        match bad {
            "dlfs://unknown_server/p" => assert!(matches!(e, HostError::Usage(_)), "{e:?}"),
            _ => assert!(matches!(e, HostError::Url(_)), "{e:?}"),
        }
    }
    assert_eq!(s.query_int("SELECT COUNT(*) FROM docs", &[]).unwrap(), 0);
    // The DLFM saw nothing.
    let mut dl = minidb::Session::new(r.dlfm.db());
    assert_eq!(dl.query_int("SELECT COUNT(*) FROM dfm_file", &[]).unwrap(), 0);
}

#[test]
fn null_datalink_values_do_not_touch_the_dlfm() {
    let r = rig();
    let mut s = with_table(&r);
    s.exec("INSERT INTO docs (id, doc) VALUES (1, NULL)").unwrap();
    assert_eq!(s.query_int("SELECT COUNT(*) FROM docs", &[]).unwrap(), 1);
    let mut dl = minidb::Session::new(r.dlfm.db());
    assert_eq!(dl.query_int("SELECT COUNT(*) FROM dfm_file", &[]).unwrap(), 0);
    // Updating from NULL to a URL links; back to NULL unlinks.
    r.fs.create("/d1", "u", b"x").unwrap();
    s.exec_params("UPDATE docs SET doc = ? WHERE id = 1", &[Value::str("dlfs://fs1/d1")]).unwrap();
    assert_eq!(r.fs.stat("/d1").unwrap().owner, "dlfm_admin");
    s.exec("UPDATE docs SET doc = NULL WHERE id = 1").unwrap();
    assert_eq!(r.fs.stat("/d1").unwrap().owner, "u");
}

#[test]
fn sys_datalinks_bookkeeping_tracks_linked_files() {
    let r = rig();
    let mut s = with_table(&r);
    for i in 0..3 {
        let p = format!("/f{i}");
        r.fs.create(&p, "u", b"x").unwrap();
        s.exec_params(
            "INSERT INTO docs (id, doc) VALUES (?, ?)",
            &[Value::Int(i), Value::str(format!("dlfs://fs1{p}"))],
        )
        .unwrap();
    }
    assert_eq!(s.query_int("SELECT COUNT(*) FROM sys_datalinks", &[]).unwrap(), 3);
    s.exec("DELETE FROM docs WHERE id = 1").unwrap();
    assert_eq!(s.query_int("SELECT COUNT(*) FROM sys_datalinks", &[]).unwrap(), 2);
    let rows = s.query("SELECT filename FROM sys_datalinks ORDER BY filename", &[]).unwrap();
    assert_eq!(rows[0][0].as_str().unwrap(), "/f0");
    assert_eq!(rows[1][0].as_str().unwrap(), "/f2");
}

#[test]
fn coordinator_log_records_commit_decisions() {
    let r = rig();
    let mut s = with_table(&r);
    r.fs.create("/f", "u", b"x").unwrap();
    s.begin().unwrap();
    let xid = s.xid().unwrap();
    s.exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/f")])
        .unwrap();
    assert!(!r.host.coord_log().committed(xid), "no decision before commit");
    s.commit().unwrap();
    assert!(r.host.coord_log().committed(xid));
    assert!(r.host.coord_log().unfinished_commits().is_empty(), "End record written");
}

#[test]
fn local_only_transactions_skip_two_phase_commit() {
    let r = rig();
    let mut s = with_table(&r);
    s.exec("CREATE TABLE plain (k BIGINT)").unwrap();
    s.begin().unwrap();
    s.exec("INSERT INTO plain (k) VALUES (1)").unwrap();
    s.commit().unwrap();
    assert_eq!(r.host.metrics().twopc_commits.load(std::sync::atomic::Ordering::Relaxed), 0);
    assert!(r.host.coord_log().is_empty());
}

#[test]
fn read_only_dlfm_participation_skips_phase_two() {
    // A transaction that touched the DLFM connection but did no datalink
    // work votes read-only and needs no commit decision.
    let r = rig();
    let mut s = with_table(&r);
    r.fs.create("/f", "u", b"x").unwrap();
    s.exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/f")])
        .unwrap();
    let log_len = r.host.coord_log().len();
    // Token issuance talks to the DLFM but is not transactional work.
    s.begin().unwrap();
    let _ = s.read_token("dlfs://fs1/f").unwrap();
    s.commit().unwrap();
    assert_eq!(r.host.coord_log().len(), log_len, "no new commit decision expected");
}

#[test]
fn nested_savepoints_backout_in_order() {
    let r = rig();
    let mut s = with_table(&r);
    for p in ["/a", "/b", "/c"] {
        r.fs.create(p, "u", b"x").unwrap();
    }
    s.begin().unwrap();
    s.exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/a")])
        .unwrap();
    let sp1 = s.savepoint().unwrap();
    s.exec_params("INSERT INTO docs (id, doc) VALUES (2, ?)", &[Value::str("dlfs://fs1/b")])
        .unwrap();
    let sp2 = s.savepoint().unwrap();
    s.exec_params("INSERT INTO docs (id, doc) VALUES (3, ?)", &[Value::str("dlfs://fs1/c")])
        .unwrap();
    s.rollback_to(&sp2).unwrap();
    s.rollback_to(&sp1).unwrap();
    s.commit().unwrap();
    assert_eq!(s.query_int("SELECT COUNT(*) FROM docs", &[]).unwrap(), 1);
    assert_eq!(r.fs.stat("/a").unwrap().owner, "dlfm_admin");
    assert_eq!(r.fs.stat("/b").unwrap().owner, "u");
    assert_eq!(r.fs.stat("/c").unwrap().owner, "u");
}

#[test]
fn drop_table_requires_helper_and_cleans_bookkeeping() {
    let r = rig();
    let mut s = with_table(&r);
    r.fs.create("/f", "u", b"x").unwrap();
    s.exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/f")])
        .unwrap();
    // Raw SQL DROP is refused for datalink tables.
    let e = s.exec("DROP TABLE docs").unwrap_err();
    assert!(matches!(e, HostError::Usage(_)));
    s.drop_table("docs").unwrap();
    assert!(r.host.dl_columns_of("docs").is_empty());
    assert_eq!(s.query_int("SELECT COUNT(*) FROM sys_dlcols", &[]).unwrap(), 0);
    assert_eq!(s.query_int("SELECT COUNT(*) FROM sys_datalinks", &[]).unwrap(), 0);
}

#[test]
fn restart_reloads_datalink_metadata_from_sys_tables() {
    let r = rig();
    let mut s = with_table(&r);
    r.fs.create("/f", "u", b"x").unwrap();
    s.exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/f")])
        .unwrap();
    let grp_before = r.host.dl_column("docs", "doc").unwrap().grp_id;
    drop(s);
    r.host.crash();
    r.host.restart().unwrap();
    let info = r.host.dl_column("docs", "doc").expect("metadata reloaded");
    assert_eq!(info.grp_id, grp_before);
    // New links still work after restart (sequences resumed).
    let mut s = r.host.session();
    r.fs.create("/g", "u", b"x").unwrap();
    s.exec_params("INSERT INTO docs (id, doc) VALUES (2, ?)", &[Value::str("dlfs://fs1/g")])
        .unwrap();
    assert_eq!(r.fs.stat("/g").unwrap().owner, "dlfm_admin");
}

#[test]
fn resolver_daemon_cleans_up_abandoned_indoubts() {
    let r = rig();
    let s = with_table(&r);
    r.fs.create("/f", "u", b"x").unwrap();
    drop(s);
    // Manufacture an indoubt: drive prepare directly without a decision.
    let conn = r.dlfm.connector().connect().unwrap();
    conn.call(dlfm::DlfmRequest::Connect { dbid: r.host.dbid() }).unwrap();
    let xid = r.host.next_xid();
    conn.call(dlfm::DlfmRequest::LinkFile {
        xid,
        rec_id: r.host.next_rec_id(),
        grp_id: r.host.dl_column("docs", "doc").unwrap().grp_id,
        filename: "/f".into(),
        in_backout: false,
    })
    .unwrap();
    conn.call(dlfm::DlfmRequest::Prepare { xid }).unwrap();

    let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let handle = r.host.spawn_resolver(std::time::Duration::from_millis(20), shutdown.clone());
    // The daemon resolves it by presumed abort.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let mut dl = minidb::Session::new(r.dlfm.db());
        if dl.query_int("SELECT COUNT(*) FROM dfm_xact", &[]).unwrap() == 0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "resolver never ran");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().unwrap();
    let mut dl = minidb::Session::new(r.dlfm.db());
    assert_eq!(
        dl.query_int("SELECT COUNT(*) FROM dfm_file", &[]).unwrap(),
        0,
        "presumed abort removes the prepared link"
    );
}

#[test]
fn update_unlinks_old_before_linking_new() {
    let r = rig();
    let mut s = with_table(&r);
    r.fs.create("/v1", "u", b"1").unwrap();
    r.fs.create("/v2", "u", b"2").unwrap();
    s.exec_params("INSERT INTO docs (id, doc) VALUES (1, ?)", &[Value::str("dlfs://fs1/v1")])
        .unwrap();
    s.exec_params("UPDATE docs SET doc = ? WHERE id = 1", &[Value::str("dlfs://fs1/v2")]).unwrap();
    // Same-transaction unlink+relink of the SAME file also works (the
    // "current and old versions in separate SQL tables" requirement).
    s.exec_params("UPDATE docs SET doc = ? WHERE id = 1", &[Value::str("dlfs://fs1/v2")]).unwrap();
    assert_eq!(r.fs.stat("/v1").unwrap().owner, "u");
    assert_eq!(r.fs.stat("/v2").unwrap().owner, "dlfm_admin");
}
