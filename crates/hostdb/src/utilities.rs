//! The Backup, Restore, and Reconcile utilities (paper §3.4).
//!
//! * **Backup** asks every DLFM to flush its pending archive copies (high
//!   priority) before the backup is declared successful, and records in the
//!   backup image which recovery-id watermark (and thus which file-group
//!   states) it captured.
//! * **Restore** brings the host database back to a backup image, ships the
//!   preserved recovery id to every DLFM (which reconciles its File table
//!   and retrieves archived file versions), and re-syncs sequences.
//! * **Reconcile** compares the host's datalink references with each
//!   DLFM's metadata and file-system state, fixing both sides: dangling
//!   host references are nulled out, orphaned DLFM links are unlinked.

use dlfm::{DlfmRequest, DlfmResponse};
use minidb::{DbImage, Session, Value};

use crate::engine::HostSession;
use crate::error::{HostError, HostResult};
use crate::url::{DatalinkUrl, SCHEME};

/// One host backup: the full database image plus the coordination metadata
/// the paper says the backup image must carry (§3.4: "keep additional
/// information in the backup image about which file servers and file groups
/// were involved").
pub struct HostBackup {
    /// Backup id (monotonic).
    pub backup_id: i64,
    /// Recovery-id watermark at backup time.
    pub rec_id: i64,
    /// The database image.
    pub image: DbImage,
    /// File servers involved at backup time.
    pub servers: Vec<String>,
}

impl HostSession {
    /// Run the Backup utility. Returns the backup id.
    pub fn backup(&mut self) -> HostResult<i64> {
        if self.xid().is_some() {
            return Err(HostError::Usage("backup must run outside a transaction".into()));
        }
        let host = self.host().clone();
        let backup_id = host.next_xid(); // monotonic id source is fine here
        let rec_id = host.current_rec_id();
        let servers = host.servers();
        // Phase 1: every DLFM flushes the asynchronous copies for files
        // linked before this watermark ("makes sure that all of the
        // necessary asynchronous copy operations have completed before
        // declaring that the database backup has been successfully
        // completed").
        for server in &servers {
            let resp = self.utility_call(server, DlfmRequest::BeginBackup { backup_id, rec_id })?;
            if let DlfmResponse::Err(e) = resp {
                // Roll the backup back everywhere.
                for s in &servers {
                    let _ =
                        self.utility_call(s, DlfmRequest::EndBackup { backup_id, success: false });
                }
                return Err(HostError::Dlfm { error: e, txn_rolled_back: false });
            }
        }
        let image = host.db().backup_image();
        for server in &servers {
            let _ =
                self.utility_call(server, DlfmRequest::EndBackup { backup_id, success: true })?;
        }
        host.backups().lock().push(HostBackup {
            backup_id,
            rec_id,
            image,
            servers: servers.clone(),
        });
        Ok(backup_id)
    }

    /// Run the Restore utility: restore the host database to a backup and
    /// tell every involved DLFM to reconcile to the preserved recovery id.
    pub fn restore(&mut self, backup_id: i64) -> HostResult<()> {
        if self.xid().is_some() {
            return Err(HostError::Usage("restore must run outside a transaction".into()));
        }
        let host = self.host().clone();
        let (rec_id, image, servers) = {
            let backups = host.backups().lock();
            let b = backups
                .iter()
                .find(|b| b.backup_id == backup_id)
                .ok_or_else(|| HostError::Usage(format!("no backup {backup_id}")))?;
            (b.rec_id, b.image.clone(), b.servers.clone())
        };
        host.db().restore_image(&image);
        host.reload_dl_columns()?;
        // The recovery id at backup time "is preserved in the backup image
        // which is sent to the DLFM during restore to reconcile its
        // metadata" (§3.4).
        for server in &servers {
            let resp = self.utility_call(server, DlfmRequest::RestoreTo { rec_id })?;
            if let DlfmResponse::Err(e) = resp {
                return Err(HostError::Dlfm { error: e, txn_rolled_back: false });
            }
        }
        Ok(())
    }

    /// Run the Reconcile utility over every attached DLFM (paper §3.4).
    /// Returns, per server, the host references that were repaired (nulled
    /// out) and the orphaned DLFM links that were removed.
    pub fn reconcile(&mut self) -> HostResult<Vec<ReconcileOutcome>> {
        if self.xid().is_some() {
            return Err(HostError::Usage("reconcile must run outside a transaction".into()));
        }
        let host = self.host().clone();
        let mut outcomes = Vec::new();
        for server in host.servers() {
            // Scan the host side: all references into this server (the
            // paper batches these into a temp table on the DLFM side).
            let mut s = Session::new(host.db());
            let rows = s.query(
                "SELECT tbl, col, filename, rec_id FROM sys_datalinks WHERE server = ?",
                &[Value::str(server.clone())],
            )?;
            let entries: Vec<(String, i64)> = rows
                .iter()
                .map(|r| Ok((r[2].as_str()?.to_string(), r[3].as_int()?)))
                .collect::<Result<_, minidb::DbError>>()?;
            let resp =
                self.utility_call(&server, DlfmRequest::Reconcile { entries: entries.clone() })?;
            let (broken, orphans) = match resp {
                DlfmResponse::ReconcileReport { broken_host_refs, orphans_unlinked } => {
                    (broken_host_refs, orphans_unlinked)
                }
                DlfmResponse::Err(e) => {
                    return Err(HostError::Dlfm { error: e, txn_rolled_back: false })
                }
                other => return Err(HostError::Rpc(format!("unexpected {other:?}"))),
            };
            // Fix the host side: null out broken references in user tables
            // and remove their bookkeeping rows.
            let mut repaired = Vec::new();
            for (filename, _rec) in &broken {
                let url = DatalinkUrl { server: server.clone(), path: filename.clone() };
                for row in &rows {
                    if row[2].as_str()? == filename.as_str() {
                        let tbl = row[0].as_str()?.to_string();
                        let col = row[1].as_str()?.to_string();
                        s.exec_params(
                            &format!("UPDATE {tbl} SET {col} = NULL WHERE {col} = ?"),
                            &[Value::str(url.to_url())],
                        )?;
                        s.exec_params(
                            "DELETE FROM sys_datalinks WHERE server = ? AND filename = ?",
                            &[Value::str(server.clone()), Value::str(filename.clone())],
                        )?;
                        repaired.push(url.to_url());
                    }
                }
            }
            outcomes.push(ReconcileOutcome {
                server: server.clone(),
                host_refs_repaired: repaired,
                dlfm_orphans_unlinked: orphans
                    .into_iter()
                    .map(|p| format!("{SCHEME}{server}{p}"))
                    .collect(),
            });
        }
        Ok(outcomes)
    }

    /// Utility-path DLFM call on this session's connection, outside any
    /// transaction context.
    fn utility_call(&mut self, server: &str, req: DlfmRequest) -> HostResult<DlfmResponse> {
        let conn = self.conn(server)?;
        Ok(conn.call(req)?)
    }
}

/// Result of reconciling one file server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconcileOutcome {
    /// Server name.
    pub server: String,
    /// Host references that were nulled out (file missing or not linked).
    pub host_refs_repaired: Vec<String>,
    /// DLFM links removed because the host no longer references them.
    pub dlfm_orphans_unlinked: Vec<String>,
}
