//! The host database with its datalink engine.
//!
//! [`HostDb`] wraps a [`minidb::Database`] and intercepts every statement
//! that touches a DATALINK column (paper §2): inserts link files, deletes
//! unlink them, updates do both, DROP TABLE deletes the file groups. The
//! host also owns the transaction machinery the DLFM relies on:
//! monotonically increasing transaction ids and recovery ids (§3.3), and
//! the presumed-abort two-phase-commit coordinator (§3.3).
//!
//! Internal bookkeeping lives in two system tables kept transactionally
//! consistent with user data:
//!
//! * `sys_dlcols(tbl, col, grp_id, server_any, access, recovery)` — one row
//!   per DATALINK column (the file group);
//! * `sys_datalinks(tbl, col, server, filename, rec_id)` — one row per
//!   currently linked file, carrying the recovery id the Reconcile and
//!   Restore utilities need.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use dlfm::{AccessControl, DlfmError, DlfmRequest, DlfmResponse, GroupSpec, TelemetryKind};
use dlrpc::{ClientConn, Connector};
use minidb::sql::ast::{Expr, Projection, SelectItem, SelectStmt, Stmt};
use minidb::{Database, DbConfig, ExecResult, Row, Session, Value};
use parking_lot::{Mutex, RwLock};

use crate::coordlog::{CoordLog, CoordRecord};
use crate::error::{HostError, HostResult};
use crate::url::DatalinkUrl;

/// Connection type to a DLFM.
pub type DlfmConn = ClientConn<DlfmRequest, DlfmResponse>;

/// Process-global registry behind `inproc://name` URLs: in-process DLFM
/// connectors published by whoever hosts the server in this process.
fn inproc_registry() -> &'static Mutex<HashMap<String, Connector<DlfmRequest, DlfmResponse>>> {
    static REGISTRY: std::sync::OnceLock<
        Mutex<HashMap<String, Connector<DlfmRequest, DlfmResponse>>>,
    > = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Publish an in-process DLFM connector under `name`, so
/// [`HostDb::attach_dlfm_url`] can resolve `inproc://name`. Re-publishing
/// a name replaces the previous connector.
pub fn register_inproc(name: &str, connector: Connector<DlfmRequest, DlfmResponse>) {
    inproc_registry().lock().insert(name.to_string(), connector);
}

/// Host configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// This database's id (embedded in recovery ids).
    pub dbid: i64,
    /// Configuration of the host's own storage engine.
    pub db: DbConfig,
    /// Synchronous phase-2 commit (the paper's conclusion: this must be
    /// true; the `false` mode exists to reproduce the §4 distributed
    /// deadlock).
    pub synchronous_commit: bool,
    /// Simulated latency of each coordinator-log force (the commit-decision
    /// fsync of presumed-abort 2PC).
    pub coord_force_latency: std::time::Duration,
    /// Group commit for coordinator-log forces: one force covers every
    /// commit decision waiting at that moment.
    pub coord_group_commit: bool,
    /// Maximum idle DLFM connections kept per server for reuse. Sessions
    /// and the indoubt resolver check connections out of this pool instead
    /// of opening a fresh one (a fresh dedicated-mode connection spawns a
    /// whole child-agent thread); checked-in connections beyond the cap
    /// are closed. `0` disables reuse.
    pub conn_pool_size: usize,
    /// How long a datalink operation may block on an in-progress shard
    /// migration of its prefix before failing.
    pub shard_route_timeout: std::time::Duration,
    /// How long a shard migration waits for transactions pinned to the
    /// pre-migration epoch to finish before giving up.
    pub shard_drain_timeout: std::time::Duration,
    /// Per-transaction autopsy: transactions that run slower than
    /// [`autopsy_slow`](HostConfig::autopsy_slow) (or abort, with
    /// [`autopsy_aborts`](HostConfig::autopsy_aborts)) get their
    /// cross-process span tree and journal slice written as a bundle
    /// under this directory. `None` disables autopsies.
    pub autopsy_dir: Option<std::path::PathBuf>,
    /// Latency threshold above which a finished transaction is autopsied.
    pub autopsy_slow: std::time::Duration,
    /// Autopsy aborted (rolled-back) transactions regardless of latency.
    pub autopsy_aborts: bool,
    /// At most this many autopsies per host (an abort storm must not
    /// fill the disk).
    pub autopsy_max: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            dbid: 1,
            db: DbConfig::default(),
            synchronous_commit: true,
            coord_force_latency: std::time::Duration::ZERO,
            coord_group_commit: true,
            conn_pool_size: 8,
            shard_route_timeout: std::time::Duration::from_secs(30),
            shard_drain_timeout: std::time::Duration::from_secs(30),
            autopsy_dir: None,
            autopsy_slow: std::time::Duration::from_secs(1),
            autopsy_aborts: true,
            autopsy_max: 16,
        }
    }
}

impl HostConfig {
    /// Fast-timeout variant for tests.
    pub fn for_tests() -> Self {
        HostConfig { dbid: 1, db: DbConfig::for_tests(), ..HostConfig::default() }
    }
}

/// Per-column datalink metadata (one file group per column, paper §3).
#[derive(Debug, Clone)]
pub struct DlColumn {
    /// File-group id.
    pub grp_id: i64,
    /// Access control applied to linked files.
    pub access: AccessControl,
    /// Whether DLFM handles backup/recovery for this group.
    pub recovery: bool,
}

/// Options for one DATALINK column at table-creation time.
#[derive(Debug, Clone)]
pub struct DatalinkSpec {
    /// Column name.
    pub column: String,
    /// Access control.
    pub access: AccessControl,
    /// Recovery option ("RECOVERY YES").
    pub recovery: bool,
}

/// Host-side operation counters.
#[derive(Debug, Default)]
pub struct HostMetrics {
    /// Committed transactions.
    pub commits: AtomicU64,
    /// Rolled-back transactions.
    pub rollbacks: AtomicU64,
    /// Two-phase commits (at least one DLFM involved).
    pub twopc_commits: AtomicU64,
    /// Prepare-phase failures (global abort).
    pub prepare_failures: AtomicU64,
    /// LinkFile requests issued.
    pub links: AtomicU64,
    /// UnlinkFile requests issued.
    pub unlinks: AtomicU64,
    /// Indoubt transactions resolved after failures.
    pub indoubts_resolved: AtomicU64,
    /// RPC failures (transport errors or DLFM-side errors) on the commit,
    /// abort, backout, and indoubt-resolution paths — previously discarded
    /// silently, now counted so partial-commit anomalies are visible.
    pub host_rpc_errors: AtomicU64,
    /// Connection-pool checkouts satisfied by an idle pooled connection.
    pub conn_pool_hits: AtomicU64,
    /// Connection-pool checkouts that had to open a fresh connection.
    pub conn_pool_misses: AtomicU64,
    /// Connections retired (dropped instead of pooled) after an RPC error
    /// or because the pool was full.
    pub conn_retired: AtomicU64,
    /// Datalink operations routed through the shard map (ring or override).
    pub shard_routes: AtomicU64,
    /// Routes that had to wait out an in-progress prefix migration.
    pub shard_route_waits: AtomicU64,
    /// Prefix migrations completed.
    pub shard_migrations: AtomicU64,
    /// Link rows moved between shards by migrations.
    pub shard_migrated_rows: AtomicU64,
    /// Phase-2 commit transport failures survived: the commit decision was
    /// already durable, so the error is absorbed (the resolver re-drives
    /// phase 2) instead of surfacing a false abort to the application.
    pub phase2_transport_errors: AtomicU64,
    /// Resolver calls skipped because a server was unreachable; resolution
    /// continued on the remaining servers (liveness fix).
    pub resolver_partial_failures: AtomicU64,
    /// Transaction autopsy bundles written (slow or aborted transactions).
    pub autopsies: AtomicU64,
    /// Telemetry scrapes of attached DLFMs that failed (server down or
    /// mid-restart); fleet views render such shards as absent/DOWN.
    pub telemetry_scrape_errors: AtomicU64,
}

struct HostInner {
    db: Database,
    dbid: i64,
    dlfms: RwLock<HashMap<String, Connector<DlfmRequest, DlfmResponse>>>,
    xid_seq: AtomicI64,
    rec_seq: AtomicI64,
    grp_seq: AtomicI64,
    dl_cols: RwLock<HashMap<(String, String), DlColumn>>,
    coord_log: CoordLog,
    sync_commit: AtomicBool,
    metrics: HostMetrics,
    backups: Mutex<Vec<crate::utilities::HostBackup>>,
    /// Idle DLFM connections kept for reuse, per server.
    conn_pool: Mutex<HashMap<String, Vec<DlfmConn>>>,
    conn_pool_size: usize,
    /// Placement of link metadata over the attached DLFMs (ROADMAP 2).
    shards: crate::shard::ShardMap,
    shard_route_timeout: std::time::Duration,
    shard_drain_timeout: std::time::Duration,
    autopsy_dir: Option<std::path::PathBuf>,
    autopsy_slow: std::time::Duration,
    autopsy_aborts: bool,
    autopsy_max: u64,
}

/// A shared handle to the host database. Cheap to clone.
#[derive(Clone)]
pub struct HostDb {
    inner: Arc<HostInner>,
}

impl HostDb {
    /// Create a host database.
    pub fn new(config: HostConfig) -> HostDb {
        let db = Database::new(config.db.clone());
        let host = HostDb {
            inner: Arc::new(HostInner {
                db,
                dbid: config.dbid,
                dlfms: RwLock::new(HashMap::new()),
                xid_seq: AtomicI64::new(1),
                rec_seq: AtomicI64::new(1),
                grp_seq: AtomicI64::new(1),
                dl_cols: RwLock::new(HashMap::new()),
                coord_log: {
                    let log = CoordLog::new();
                    log.set_force_latency(config.coord_force_latency);
                    log.set_group_commit(config.coord_group_commit);
                    log
                },
                sync_commit: AtomicBool::new(config.synchronous_commit),
                metrics: HostMetrics::default(),
                backups: Mutex::new(Vec::new()),
                conn_pool: Mutex::new(HashMap::new()),
                conn_pool_size: config.conn_pool_size,
                shards: crate::shard::ShardMap::new(),
                shard_route_timeout: config.shard_route_timeout,
                shard_drain_timeout: config.shard_drain_timeout,
                autopsy_dir: config.autopsy_dir,
                autopsy_slow: config.autopsy_slow,
                autopsy_aborts: config.autopsy_aborts,
                autopsy_max: config.autopsy_max,
            }),
        };
        host.create_sys_tables();
        host
    }

    fn create_sys_tables(&self) {
        let mut s = Session::new(&self.inner.db);
        s.exec(
            "CREATE TABLE sys_dlcols (tbl VARCHAR NOT NULL, col VARCHAR NOT NULL, \
             grp_id BIGINT NOT NULL, access_ctl INTEGER NOT NULL, recovery INTEGER NOT NULL)",
        )
        .expect("sys table creation");
        s.exec("CREATE UNIQUE INDEX ix_sys_dlcols ON sys_dlcols (tbl, col)")
            .expect("sys index creation");
        s.exec(
            "CREATE TABLE sys_datalinks (tbl VARCHAR NOT NULL, col VARCHAR NOT NULL, \
             server VARCHAR NOT NULL, filename VARCHAR NOT NULL, rec_id BIGINT NOT NULL)",
        )
        .expect("sys table creation");
        s.exec("CREATE UNIQUE INDEX ix_sys_dl_file ON sys_datalinks (server, filename)")
            .expect("sys index creation");
        s.exec("CREATE INDEX ix_sys_dl_tbl ON sys_datalinks (tbl, col)")
            .expect("sys index creation");
        // System tables are hot paths of the datalink engine: make sure the
        // optimizer probes them by index (the DLFM lesson applies here too).
        self.inner.db.set_table_stats("sys_dlcols", 1_000_000).expect("stats");
        self.inner.db.set_table_stats("sys_datalinks", 1_000_000).expect("stats");
        self.inner.db.set_index_stats("ix_sys_dlcols", 1_000_000).expect("stats");
        self.inner.db.set_index_stats("ix_sys_dl_file", 1_000_000).expect("stats");
        self.inner.db.set_index_stats("ix_sys_dl_tbl", 1_000_000).expect("stats");
    }

    /// Register a DLFM (file server) under a name used in datalink URLs.
    pub fn attach_dlfm(&self, server: &str, connector: Connector<DlfmRequest, DlfmResponse>) {
        self.inner.dlfms.write().insert(server.to_string(), connector);
    }

    /// Register a DLFM by connection URL: `tcp://host:port` and
    /// `unix:///path.sock` dial the wire transport (redialing on broken
    /// sockets), `inproc://name` resolves a connector previously published
    /// with [`register_inproc`]. This is how a host process attaches to a
    /// DLFM it does not host in its own address space.
    pub fn attach_dlfm_url(&self, server: &str, url: &str) -> HostResult<()> {
        let connector = match dlrpc::Endpoint::parse(url)? {
            dlrpc::Endpoint::Inproc(name) => inproc_registry()
                .lock()
                .get(&name)
                .cloned()
                .ok_or_else(|| HostError::Rpc(format!("no in-process DLFM named {name:?}")))?,
            ep => {
                let addr = ep.wire_addr().expect("tcp/unix endpoints have a wire address");
                dlrpc::wire_connector::<DlfmRequest, DlfmResponse>(addr)
            }
        };
        self.attach_dlfm(server, connector);
        Ok(())
    }

    /// Open an application session.
    pub fn session(&self) -> HostSession {
        HostSession {
            host: self.clone(),
            session: Session::new(&self.inner.db),
            conns: HashMap::new(),
            txn: None,
        }
    }

    /// This host's database id.
    pub fn dbid(&self) -> i64 {
        self.inner.dbid
    }

    /// Next transaction id (monotonically increasing, paper §3.3).
    pub fn next_xid(&self) -> i64 {
        self.inner.xid_seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Next recovery id: dbid in the high bits, a monotonic timestamp
    /// sequence in the low bits — globally unique and monotonically
    /// increasing per host (paper §3.2).
    pub fn next_rec_id(&self) -> i64 {
        (self.inner.dbid << 48) | self.inner.rec_seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Current recovery-id watermark: the last id assigned. Everything
    /// `<=` this watermark happened before "now" (used by Backup).
    pub fn current_rec_id(&self) -> i64 {
        (self.inner.dbid << 48) | (self.inner.rec_seq.load(Ordering::SeqCst) - 1)
    }

    /// The underlying storage engine (diagnostics and utilities).
    pub fn db(&self) -> &Database {
        &self.inner.db
    }

    /// Host counters.
    pub fn metrics(&self) -> &HostMetrics {
        &self.inner.metrics
    }

    /// The coordinator log (diagnostics).
    pub fn coord_log(&self) -> &CoordLog {
        &self.inner.coord_log
    }

    /// Host metrics in Prometheus text format: operation counters, the 2PC
    /// coordinator log (forces vs decisions, group-commit batch sizes), and
    /// the host-local storage engine's commit path.
    pub fn metrics_text(&self) -> String {
        let m = &self.inner.metrics;
        let db = &self.inner.db;
        let coord = &self.inner.coord_log;
        let mut r = obs::Registry::new();
        r.counter(
            "hostdb_commits_total",
            "Committed host transactions.",
            &[],
            m.commits.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_rollbacks_total",
            "Rolled-back host transactions.",
            &[],
            m.rollbacks.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_twopc_commits_total",
            "Two-phase commits.",
            &[],
            m.twopc_commits.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_prepare_failures_total",
            "Prepare-phase failures.",
            &[],
            m.prepare_failures.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_links_total",
            "LinkFile requests issued.",
            &[],
            m.links.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_unlinks_total",
            "UnlinkFile requests issued.",
            &[],
            m.unlinks.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_indoubts_resolved_total",
            "Indoubt transactions resolved.",
            &[],
            m.indoubts_resolved.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_rpc_errors_total",
            "RPC failures on commit/abort/backout/indoubt paths (possible partial-commit anomalies).",
            &[],
            m.host_rpc_errors.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_conn_pool_hits_total",
            "DLFM connection checkouts served from the idle pool.",
            &[],
            m.conn_pool_hits.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_conn_pool_misses_total",
            "DLFM connection checkouts that opened a fresh connection.",
            &[],
            m.conn_pool_misses.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_conn_retired_total",
            "DLFM connections retired instead of pooled (error or pool full).",
            &[],
            m.conn_retired.load(Ordering::Relaxed),
        );
        r.gauge(
            "hostdb_conn_pool_idle",
            "Idle DLFM connections available for reuse.",
            &[],
            self.conn_pool_idle() as i64,
        );
        r.counter(
            "hostdb_shard_routes_total",
            "Datalink operations routed through the shard map.",
            &[],
            m.shard_routes.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_shard_route_waits_total",
            "Routes that waited out an in-progress prefix migration.",
            &[],
            m.shard_route_waits.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_shard_migrations_total",
            "Prefix migrations completed.",
            &[],
            m.shard_migrations.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_shard_migrated_rows_total",
            "Link rows moved between shards by migrations.",
            &[],
            m.shard_migrated_rows.load(Ordering::Relaxed),
        );
        r.gauge(
            "hostdb_shard_epoch",
            "Current shard-map epoch (bumped on every placement change).",
            &[],
            self.inner.shards.epoch() as i64,
        );
        r.gauge(
            "hostdb_shard_count",
            "Shards in the hash ring (0 = routing disabled).",
            &[],
            self.inner.shards.shards().len() as i64,
        );
        r.counter(
            "hostdb_phase2_transport_errors_total",
            "Phase-2 transport failures absorbed after a durable commit decision.",
            &[],
            m.phase2_transport_errors.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_resolver_partial_failures_total",
            "Resolver calls skipped for unreachable servers (pass continued).",
            &[],
            m.resolver_partial_failures.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_autopsies_total",
            "Transaction autopsy bundles written (slow or aborted transactions).",
            &[],
            m.autopsies.load(Ordering::Relaxed),
        );
        r.counter(
            "hostdb_telemetry_scrape_errors_total",
            "Failed telemetry scrapes of attached DLFMs (shard down).",
            &[],
            m.telemetry_scrape_errors.load(Ordering::Relaxed),
        );
        r.counter(
            "coordlog_forces_total",
            "Coordinator-log forces (one per leader).",
            &[],
            coord.forces_total(),
        );
        r.counter(
            "coordlog_commit_decisions_total",
            "Commit-decision records appended.",
            &[],
            coord.decisions_total(),
        );
        r.histogram(
            "coordlog_force_batch_decisions",
            "Commit decisions made durable per coordinator-log force.",
            &[],
            coord.batch_hist(),
        );
        // The host-local storage engine renders the full minidb family
        // (the same block DLFM's local database exports).
        db.render_metrics(&mut r);
        // Socket-backed DLFM connectors export the rpc_wire_* family (the
        // reconnect-storm watch rule reads it from this provider).
        for connector in self.inner.dlfms.read().values() {
            connector.render_metrics(&mut r);
        }
        r.counter(
            "obs_spans_dropped_total",
            "Span events overwritten in the trace ring before being read.",
            &[],
            obs::trace::global_ring().dropped(),
        );
        r.counter(
            "obs_journal_events_total",
            "Structured events recorded by the flight-recorder journal.",
            &[],
            obs::journal::recorded(),
        );
        r.counter(
            "obs_journal_events_dropped_total",
            "Journal events overwritten in the flight-recorder ring before being read.",
            &[],
            obs::journal::dropped(),
        );
        obs::render_process_metrics(&mut r);
        obs::render_watch_metrics(&mut r);
        r.render()
    }

    /// Human-readable live status of the coordinator side: attached DLFM
    /// servers, the connection pool, transactions whose phase 2 is still
    /// outstanding, and the host-local lock table (rendered by the
    /// `dlfmtop` example).
    pub fn status_text(&self) -> String {
        let m = &self.inner.metrics;
        let mut out = String::new();
        out.push_str("=== host status ===\n");
        let servers = self.servers();
        out.push_str(&format!(
            "dlfm servers attached: {} ({})\n",
            servers.len(),
            servers.join(", ")
        ));
        out.push_str(&format!(
            "conn pool: {} idle (hits {}, misses {}, retired {})\n",
            self.conn_pool_idle(),
            m.conn_pool_hits.load(Ordering::Relaxed),
            m.conn_pool_misses.load(Ordering::Relaxed),
            m.conn_retired.load(Ordering::Relaxed),
        ));
        out.push_str(&format!(
            "transactions: {} committed, {} rolled back, {} via 2PC, {} in-doubt resolved\n",
            m.commits.load(Ordering::Relaxed),
            m.rollbacks.load(Ordering::Relaxed),
            m.twopc_commits.load(Ordering::Relaxed),
            m.indoubts_resolved.load(Ordering::Relaxed),
        ));
        let shards = &self.inner.shards;
        let ring = shards.shards();
        if ring.is_empty() {
            out.push_str("shard map: disabled (URL server names route directly)\n");
        } else {
            out.push_str(&format!(
                "shard map: {} shards (epoch {}): {}\n",
                ring.len(),
                shards.epoch(),
                ring.join(", ")
            ));
            out.push_str(&format!(
                "  routes {} ({} waited on migration), migrations {} ({} rows moved)\n",
                m.shard_routes.load(Ordering::Relaxed),
                m.shard_route_waits.load(Ordering::Relaxed),
                m.shard_migrations.load(Ordering::Relaxed),
                m.shard_migrated_rows.load(Ordering::Relaxed),
            ));
            for (prefix, owner, migrating) in shards.overrides() {
                out.push_str(&format!(
                    "  prefix {prefix} -> {owner}{}\n",
                    if migrating { " (migrating)" } else { "" }
                ));
            }
            let inflight = shards.inflight();
            if !inflight.is_empty() {
                let pins: Vec<String> =
                    inflight.iter().map(|(e, n)| format!("epoch {e} x{n}")).collect();
                out.push_str(&format!("  in-flight pins: {}\n", pins.join(", ")));
            }
        }
        let unfinished = self.inner.coord_log.unfinished_commits();
        if unfinished.is_empty() {
            out.push_str("phase-2 outstanding: none\n");
        } else {
            out.push_str(&format!("phase-2 outstanding: {}\n", unfinished.len()));
            for (xid, servers) in unfinished {
                out.push_str(&format!(
                    "  xid#{xid} committed, awaiting end record (servers: {})\n",
                    servers.join(", ")
                ));
            }
        }
        out.push_str(&format!(
            "coordinator log: {} records, {} decisions, {} forces\n",
            self.inner.coord_log.len(),
            self.inner.coord_log.decisions_total(),
            self.inner.coord_log.forces_total(),
        ));
        out.push_str(&self.inner.db.lock_table_summary());
        out
    }

    /// Toggle synchronous phase-2 commit (the §4 ablation knob).
    pub fn set_synchronous_commit(&self, on: bool) {
        self.inner.sync_commit.store(on, Ordering::SeqCst);
    }

    /// Is phase-2 commit synchronous?
    pub fn synchronous_commit(&self) -> bool {
        self.inner.sync_commit.load(Ordering::SeqCst)
    }

    /// Datalink metadata for a column, if it is a DATALINK column.
    pub fn dl_column(&self, table: &str, column: &str) -> Option<DlColumn> {
        self.inner
            .dl_cols
            .read()
            .get(&(table.to_ascii_lowercase(), column.to_ascii_lowercase()))
            .cloned()
    }

    /// All datalink columns of a table.
    pub fn dl_columns_of(&self, table: &str) -> Vec<(String, DlColumn)> {
        let lc = table.to_ascii_lowercase();
        self.inner
            .dl_cols
            .read()
            .iter()
            .filter(|((t, _), _)| *t == lc)
            .map(|((_, c), info)| (c.clone(), info.clone()))
            .collect()
    }

    pub(crate) fn register_dl_column(&self, table: &str, column: &str, info: DlColumn) {
        self.inner
            .dl_cols
            .write()
            .insert((table.to_ascii_lowercase(), column.to_ascii_lowercase()), info);
    }

    pub(crate) fn forget_dl_columns(&self, table: &str) {
        let lc = table.to_ascii_lowercase();
        self.inner.dl_cols.write().retain(|(t, _), _| *t != lc);
    }

    pub(crate) fn connector_for(
        &self,
        server: &str,
    ) -> HostResult<Connector<DlfmRequest, DlfmResponse>> {
        self.inner
            .dlfms
            .read()
            .get(server)
            .cloned()
            .ok_or_else(|| HostError::Usage(format!("no DLFM attached for server {server}")))
    }

    /// Wire-transport instrumentation of `server`'s connector, when it is
    /// socket-backed (`None` for in-process connectors).
    pub fn wire_stats(&self, server: &str) -> Option<Arc<dlrpc::WireStats>> {
        self.inner.dlfms.read().get(server).and_then(|c| c.wire_stats().cloned())
    }

    /// Names of all attached DLFM servers.
    pub fn servers(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.dlfms.read().keys().cloned().collect();
        v.sort();
        v
    }

    pub(crate) fn next_grp_id(&self) -> i64 {
        self.inner.grp_seq.fetch_add(1, Ordering::SeqCst)
    }

    pub(crate) fn backups(&self) -> &Mutex<Vec<crate::utilities::HostBackup>> {
        &self.inner.backups
    }

    // ------------------------------------------------------------------
    // Crash / restart / indoubt resolution
    // ------------------------------------------------------------------

    /// Simulate a host crash: the storage engine and the unforced tail of
    /// the coordinator log are lost.
    pub fn crash(&self) {
        self.inner.db.crash();
        self.inner.coord_log.crash();
    }

    /// Restart after a crash: recover storage, reload datalink metadata,
    /// and resolve indoubt sub-transactions at every DLFM (paper §3.3:
    /// "host database restart processing does it").
    pub fn restart(&self) -> HostResult<()> {
        self.inner.db.restart()?;
        self.reload_dl_columns()?;
        // Advance sequences past everything recorded anywhere durable.
        let mut s = Session::new(&self.inner.db);
        let max_rec = s.query_int("SELECT MAX(rec_id) FROM sys_datalinks", &[]).unwrap_or(0);
        let low = max_rec & 0xFFFF_FFFF_FFFF;
        let cur = self.inner.rec_seq.load(Ordering::SeqCst);
        self.inner.rec_seq.store(cur.max(low + 1), Ordering::SeqCst);
        self.resolve_indoubts()?;
        Ok(())
    }

    pub(crate) fn reload_dl_columns(&self) -> HostResult<()> {
        let mut s = Session::new(&self.inner.db);
        let rows = s.query("SELECT tbl, col, grp_id, access_ctl, recovery FROM sys_dlcols", &[])?;
        let mut map = HashMap::new();
        let mut max_grp = 0i64;
        for row in rows {
            let grp_id = row[2].as_int()?;
            max_grp = max_grp.max(grp_id);
            map.insert(
                (row[0].as_str()?.to_string(), row[1].as_str()?.to_string()),
                DlColumn {
                    grp_id,
                    access: AccessControl::from_code(row[3].as_int()?),
                    recovery: row[4].as_int()? != 0,
                },
            );
        }
        *self.inner.dl_cols.write() = map;
        let cur = self.inner.grp_seq.load(Ordering::SeqCst);
        self.inner.grp_seq.store(cur.max(max_grp + 1), Ordering::SeqCst);
        Ok(())
    }

    /// Resolve indoubt sub-transactions on every attached DLFM: commit
    /// those with a durable coordinator commit record, abort the rest
    /// (presumed abort). Also re-drives unfinished commits.
    ///
    /// A single unreachable server must not starve resolution on the
    /// others: per-server failures are noted (counted in
    /// `resolver_partial_failures`) and the pass continues. An unfinished
    /// commit's `End` record is appended only once **all** its servers
    /// acked the re-driven phase 2 — ending it earlier would stop the
    /// resolver from ever retrying the servers that failed.
    pub fn resolve_indoubts(&self) -> HostResult<usize> {
        let mut resolved = 0usize;
        let mut failed_calls = 0usize;
        // Re-drive commit decisions that never finished phase 2.
        for (xid, servers) in self.inner.coord_log.unfinished_commits() {
            obs::info!(
                "hostdb::resolver",
                "re-driving unfinished commit for xid {xid} on {} server(s)",
                servers.len()
            );
            let mut all_acked = true;
            for server in &servers {
                let conn = match self.checkout_conn(server) {
                    Ok(conn) => conn,
                    Err(e) => {
                        self.note_rpc_error("re-driven commit", server, &e);
                        all_acked = false;
                        failed_calls += 1;
                        continue;
                    }
                };
                match conn.call(DlfmRequest::Commit { xid }) {
                    Ok(DlfmResponse::Ok) => {
                        self.checkin_conn(server, conn);
                        resolved += 1;
                    }
                    Ok(DlfmResponse::Err(e)) => {
                        self.note_rpc_error("re-driven commit", server, &e);
                        self.checkin_conn(server, conn);
                        all_acked = false;
                        failed_calls += 1;
                    }
                    Ok(other) => {
                        self.note_rpc_error(
                            "re-driven commit",
                            server,
                            &format!("unexpected response {other:?}"),
                        );
                        self.checkin_conn(server, conn);
                        all_acked = false;
                        failed_calls += 1;
                    }
                    // Transport failure: retire the connection.
                    Err(e) => {
                        self.note_rpc_error("re-driven commit", server, &e);
                        all_acked = false;
                        failed_calls += 1;
                    }
                }
            }
            if all_acked {
                self.inner.coord_log.append(CoordRecord::End { xid });
            }
        }
        // Ask each DLFM for its indoubt list and resolve by presumed abort.
        for server in self.servers() {
            let conn = match self.checkout_conn(&server) {
                Ok(conn) => conn,
                Err(e) => {
                    self.note_rpc_error("indoubt listing", &server, &e);
                    failed_calls += 1;
                    continue;
                }
            };
            let resp = match conn.call(DlfmRequest::ListIndoubt) {
                Ok(resp) => resp,
                Err(e) => {
                    // Transport failure: retire the connection, next server.
                    self.note_rpc_error("indoubt listing", &server, &e);
                    failed_calls += 1;
                    continue;
                }
            };
            let mut transport_ok = true;
            if let DlfmResponse::Indoubt(xids) = resp {
                for xid in xids {
                    let committed = self.inner.coord_log.committed(xid);
                    obs::info!(
                        "hostdb::resolver",
                        "resolving indoubt xid {xid} on {server}: {}",
                        if committed { "commit" } else { "presumed abort" }
                    );
                    let decision = if committed {
                        DlfmRequest::Commit { xid }
                    } else {
                        DlfmRequest::Abort { xid }
                    };
                    match conn.call(decision) {
                        Ok(DlfmResponse::Ok) => {}
                        Ok(DlfmResponse::Err(e)) => {
                            self.note_rpc_error("indoubt resolution", &server, &e)
                        }
                        Ok(other) => self.note_rpc_error(
                            "indoubt resolution",
                            &server,
                            &format!("unexpected response {other:?}"),
                        ),
                        Err(e) => {
                            self.note_rpc_error("indoubt resolution", &server, &e);
                            transport_ok = false;
                            failed_calls += 1;
                        }
                    }
                    resolved += 1;
                    self.inner.metrics.indoubts_resolved.fetch_add(1, Ordering::Relaxed);
                }
            }
            if transport_ok {
                self.checkin_conn(&server, conn);
            }
        }
        if failed_calls > 0 {
            self.inner
                .metrics
                .resolver_partial_failures
                .fetch_add(failed_calls as u64, Ordering::Relaxed);
            obs::warn!(
                "hostdb::resolver",
                "resolution pass continued past {failed_calls} failed call(s)"
            );
        }
        Ok(resolved)
    }

    /// Spawn the indoubt-resolver daemon: polls the DLFMs and resolves
    /// indoubt transactions when they come back up (paper §3.3).
    pub fn spawn_resolver(
        &self,
        interval: std::time::Duration,
        shutdown: Arc<AtomicBool>,
    ) -> std::thread::JoinHandle<()> {
        let host = self.clone();
        std::thread::spawn(move || {
            let slice = std::time::Duration::from_millis(5).min(interval);
            'daemon: loop {
                // Park in small slices so shutdown is prompt even when the
                // resolver interval is long.
                let deadline = std::time::Instant::now() + interval;
                while std::time::Instant::now() < deadline {
                    if shutdown.load(Ordering::SeqCst) {
                        break 'daemon;
                    }
                    std::thread::sleep(slice);
                }
                let _ = host.resolve_indoubts();
            }
        })
    }

    pub(crate) fn fresh_conn(&self, server: &str) -> HostResult<DlfmConn> {
        let connector = self.connector_for(server)?;
        let conn = connector.connect()?;
        match conn.call(DlfmRequest::Connect { dbid: self.inner.dbid })? {
            DlfmResponse::Ok => Ok(conn),
            other => Err(HostError::Rpc(format!("connect failed: {other:?}"))),
        }
    }

    /// Check a connection to `server` out of the pool, opening a fresh one
    /// only when no idle connection is available. Wire-backed connections
    /// are ping-probed first: the peer may have died since checkin, and a
    /// retired conn here lets `fresh_conn` redial the socket instead of
    /// handing the caller a dead multiplexer.
    pub(crate) fn checkout_conn(&self, server: &str) -> HostResult<DlfmConn> {
        while let Some(conn) = self.inner.conn_pool.lock().get_mut(server).and_then(Vec::pop) {
            if conn.is_wire() && conn.ping(std::time::Duration::from_millis(200)).is_err() {
                self.inner.metrics.conn_retired.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.inner.metrics.conn_pool_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(conn);
        }
        self.inner.metrics.conn_pool_misses.fetch_add(1, Ordering::Relaxed);
        self.fresh_conn(server)
    }

    /// Return a connection for reuse. Health-checked with a quick Ping so
    /// a broken connection is retired here instead of poisoning the next
    /// checkout; also retired when the pool is at capacity.
    pub(crate) fn checkin_conn(&self, server: &str, conn: DlfmConn) {
        // Wire-backed connections probe with a transport-level Ping frame
        // (answered by the peer's reader thread, no agent round trip);
        // in-process ones must go through the agent to prove it is alive.
        let probe = std::time::Duration::from_millis(200);
        let healthy = self.inner.conn_pool_size > 0
            && if conn.is_wire() {
                conn.ping(probe).is_ok()
            } else {
                matches!(conn.call_timeout(DlfmRequest::Ping, probe), Ok(DlfmResponse::Ok))
            };
        if healthy {
            let mut pool = self.inner.conn_pool.lock();
            let idle = pool.entry(server.to_string()).or_default();
            if idle.len() < self.inner.conn_pool_size {
                idle.push(conn);
                return;
            }
        }
        self.inner.metrics.conn_retired.fetch_add(1, Ordering::Relaxed);
    }

    /// Idle pooled connections across all servers (gauge).
    pub fn conn_pool_idle(&self) -> usize {
        self.inner.conn_pool.lock().values().map(Vec::len).sum()
    }

    /// Record (and log) an RPC failure on a path that must not abort the
    /// caller — phase-2 commit, abort, backout, indoubt resolution.
    fn note_rpc_error(&self, context: &str, server: &str, err: &dyn std::fmt::Display) {
        self.inner.metrics.host_rpc_errors.fetch_add(1, Ordering::Relaxed);
        obs::warn!("hostdb::rpc", "{context} failed on {server}: {err}");
    }

    // ------------------------------------------------------------------
    // Fleet telemetry: scraping attached DLFMs over the wire
    // ------------------------------------------------------------------

    /// Pull one telemetry document from an attached DLFM over its normal
    /// RPC transport (pooled connection; a fresh dial when the pool is
    /// empty). A transport failure retires the connection and surfaces as
    /// an error — callers render the shard as DOWN rather than crashing.
    pub fn fetch_telemetry(&self, server: &str, kind: TelemetryKind) -> HostResult<String> {
        let result = (|| {
            let conn = self.checkout_conn(server)?;
            match conn.call(DlfmRequest::FetchTelemetry { kind }) {
                Ok(DlfmResponse::Telemetry(text)) => {
                    self.checkin_conn(server, conn);
                    Ok(text)
                }
                Ok(other) => {
                    self.checkin_conn(server, conn);
                    Err(HostError::Rpc(format!("unexpected telemetry response {other:?}")))
                }
                // Transport error: the connection is dead, drop it.
                Err(e) => Err(e.into()),
            }
        })();
        if result.is_err() {
            self.inner.metrics.telemetry_scrape_errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Scrape one telemetry document from every attached DLFM. Unreachable
    /// shards yield `None` — fleet views (dlfmtop) render them as DOWN
    /// instead of erroring mid-refresh.
    pub fn fleet_telemetry(&self, kind: TelemetryKind) -> Vec<(String, Option<String>)> {
        let mut out: Vec<(String, Option<String>)> = self
            .servers()
            .into_iter()
            .map(|server| {
                let text = self.fetch_telemetry(&server, kind).ok();
                (server, text)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Estimate the offset of `server`'s observability clock relative to
    /// the local one: read the remote clock over the wire and assume the
    /// reading was taken halfway through the round trip. Each process
    /// timestamps spans with µs since its *own* start, so without this the
    /// merged fleet trace would scatter processes across the timeline.
    pub fn clock_offset_micros(&self, server: &str) -> HostResult<i64> {
        let t0 = obs::journal::now_micros();
        let text = self.fetch_telemetry(server, TelemetryKind::Clock)?;
        let t1 = obs::journal::now_micros();
        let remote: u64 = text
            .trim()
            .parse()
            .map_err(|_| HostError::Rpc(format!("bad clock reading {text:?} from {server}")))?;
        let local_mid = t0 + (t1 - t0) / 2;
        Ok(local_mid as i64 - remote as i64)
    }

    /// Remote per-process span dumps from every attached DLFM, shifted
    /// onto the local clock. Unreachable daemons are skipped (warned, not
    /// fatal); `filter` keeps only spans of the given trace ids.
    fn remote_traces(&self, filter: Option<&BTreeSet<u64>>) -> Vec<obs::ProcessTrace> {
        let mut servers = self.servers();
        servers.sort();
        let mut out = Vec::new();
        for server in servers {
            let scraped = (|| -> HostResult<obs::ProcessTrace> {
                let clock_offset_micros = self.clock_offset_micros(&server)?;
                let dump = self.fetch_telemetry(&server, TelemetryKind::Spans)?;
                let mut spans = obs::parse_span_dump(&dump);
                if let Some(ids) = filter {
                    spans.retain(|s| ids.contains(&s.trace_id));
                }
                Ok(obs::ProcessTrace {
                    name: format!("dlfm[{server}]"),
                    clock_offset_micros,
                    spans,
                })
            })();
            match scraped {
                Ok(t) => out.push(t),
                Err(e) => {
                    obs::warn!("hostdb::fleet", "telemetry scrape of {server} failed: {e}")
                }
            }
        }
        out
    }

    /// Every attached daemon's clock-aligned spans (full ring).
    pub fn fleet_remote_traces(&self) -> Vec<obs::ProcessTrace> {
        self.remote_traces(None)
    }

    /// ONE merged Perfetto/Chrome trace for the whole deployment: the
    /// local span ring and journal, plus every attached daemon's spans
    /// pulled over the telemetry RPC and shifted onto the local timeline.
    /// Daemons that are down are simply absent from the document.
    pub fn fleet_trace(&self) -> String {
        let remotes = self.remote_traces(None);
        obs::merge_chrome_trace(
            &obs::trace::global_ring().snapshot(),
            &obs::journal::snapshot(),
            &remotes,
        )
    }

    /// Build a fleet watchdog: the host's own metrics under provider
    /// `host`, plus one provider per attached DLFM scraped over the
    /// telemetry RPC (an unreachable shard contributes no series that
    /// tick, so rules simply don't see it). Callers append rules — e.g.
    /// [`obs::Rule::skew_quantile`] over `dlfm_commit_micros` to catch one
    /// shard's commit p99 running away from the ring median — then spawn
    /// it. Attach every DLFM *before* building: the provider set is fixed
    /// here.
    pub fn fleet_watchdog(&self, config: obs::WatchConfig) -> obs::Watchdog {
        let host = self.clone();
        let mut w = obs::Watchdog::new(config).provider("host", move || host.metrics_text());
        let host = self.clone();
        w = w.section("host_status", move || host.status_text());
        let mut servers = self.servers();
        servers.sort();
        for server in servers {
            let host = self.clone();
            let name = server.clone();
            w = w.provider(&server, move || {
                host.fetch_telemetry(&name, TelemetryKind::Metrics).unwrap_or_default()
            });
        }
        w
    }

    // ------------------------------------------------------------------
    // Transaction autopsy
    // ------------------------------------------------------------------

    /// Called at the end of every transaction: write an autopsy bundle if
    /// it was slow (or aborted, when configured) — the assembled
    /// cross-process span tree plus the journal slice, so the question
    /// "why was THIS transaction slow" is answerable after the fact
    /// without reproducing it.
    pub(crate) fn maybe_autopsy(
        &self,
        xid: i64,
        start_micros: u64,
        trace_ids: &BTreeSet<u64>,
        aborted: bool,
    ) {
        let Some(root) = &self.inner.autopsy_dir else { return };
        let elapsed = obs::journal::now_micros().saturating_sub(start_micros);
        let slow = elapsed >= self.inner.autopsy_slow.as_micros() as u64;
        let autopsy_abort = aborted && self.inner.autopsy_aborts;
        if !slow && !autopsy_abort {
            return;
        }
        if self.inner.metrics.autopsies.load(Ordering::Relaxed) >= self.inner.autopsy_max {
            return;
        }
        let seq = self.inner.metrics.autopsies.fetch_add(1, Ordering::Relaxed);
        let dir = root.join(format!("autopsy-{seq:04}-xid{xid}"));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            obs::warn!("hostdb::autopsy", "cannot create {}: {e}", dir.display());
            return;
        }

        // Local spans of this transaction's traces, and the matching
        // remote spans from every reachable daemon (clock-aligned).
        let local: Vec<obs::SpanEvent> = obs::trace::global_ring()
            .snapshot()
            .into_iter()
            .filter(|s| trace_ids.contains(&s.trace_id))
            .collect();
        let remotes = self.remote_traces(Some(trace_ids));
        let journal: Vec<obs::JournalEvent> = obs::journal::snapshot()
            .into_iter()
            .filter(|e| trace_ids.contains(&e.trace_id) || e.txn == xid)
            .collect();

        let outcome = if aborted { "aborted" } else { "slow-commit" };
        let mut report = format!(
            "transaction autopsy\nxid: {xid}\noutcome: {outcome}\nelapsed_micros: {elapsed}\n"
        );
        report.push_str(&format!(
            "slow_threshold_micros: {}\ntraces: {}\n",
            self.inner.autopsy_slow.as_micros(),
            trace_ids.iter().map(|t| format!("{t:016x}")).collect::<Vec<_>>().join(" "),
        ));
        let down: Vec<String> = {
            let mut servers = self.servers();
            servers.sort();
            servers
                .into_iter()
                .filter(|s| !remotes.iter().any(|r| r.name == format!("dlfm[{s}]")))
                .collect()
        };
        report.push_str(&format!(
            "processes: host + {} remote ({} unreachable{})\n\nspan tree:\n{}",
            remotes.len(),
            down.len(),
            if down.is_empty() { String::new() } else { format!(": {}", down.join(" ")) },
            render_span_tree(&local, &remotes),
        ));

        let mut journal_text = String::new();
        for e in &journal {
            journal_text.push_str(&format!(
                "{:>12}us trace={:016x} txn={} {:<14} {}\n",
                e.micros,
                e.trace_id,
                e.txn,
                e.kind.as_str(),
                e.detail
            ));
        }

        let files = [
            ("report.txt", report),
            ("trace.json", obs::merge_chrome_trace(&local, &journal, &remotes)),
            ("journal.txt", journal_text),
        ];
        for (name, content) in files {
            if let Err(e) = std::fs::write(dir.join(name), content) {
                obs::warn!("hostdb::autopsy", "cannot write {name}: {e}");
            }
        }
        obs::warn!(
            "hostdb::autopsy",
            "{outcome} transaction xid {xid} ({elapsed}us): bundle at {}",
            dir.display()
        );
    }

    // ------------------------------------------------------------------
    // Shard map: hash-partitioned link placement (ROADMAP 2)
    // ------------------------------------------------------------------

    /// The shard map (placement of link metadata over the attached DLFMs).
    pub fn shard_map(&self) -> &crate::shard::ShardMap {
        &self.inner.shards
    }

    /// Enable hash routing over `shards` (each must already be attached).
    /// The ring is fixed from here on; growing the deployment goes through
    /// [`HostDb::migrate_prefix`]. Call before loading data: rows linked
    /// under direct URL routing are not re-homed by enabling the ring.
    pub fn set_shards(&self, shards: &[&str]) -> HostResult<()> {
        for s in shards {
            self.connector_for(s)?;
        }
        if shards.is_empty() {
            return Err(HostError::Usage("set_shards needs at least one shard".into()));
        }
        self.inner.shards.set_shards(&shards.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        Ok(())
    }

    /// The shard owning a datalink for a transaction pinned at `epoch`:
    /// the map's placement when the ring is enabled, otherwise the URL's
    /// own server name (pre-shard behaviour). May block while the path's
    /// prefix is mid-migration.
    pub(crate) fn route_datalink(&self, url: &DatalinkUrl, epoch: u64) -> HostResult<String> {
        let routed = self
            .inner
            .shards
            .route(&url.path, epoch, self.inner.shard_route_timeout)
            .map_err(|e| HostError::Usage(e.to_string()))?;
        match routed {
            Some(r) => {
                self.inner.metrics.shard_routes.fetch_add(1, Ordering::Relaxed);
                if r.waited {
                    self.inner.metrics.shard_route_waits.fetch_add(1, Ordering::Relaxed);
                }
                Ok(r.shard)
            }
            None => Ok(url.server.clone()),
        }
    }

    /// Migrate the link metadata of a path prefix onto shard `to` without
    /// stopping traffic (online reconfiguration v1):
    ///
    /// 1. flip the prefix to *migrating* in the map (epoch bump) — new
    ///    transactions touching it park until the copy settles, while
    ///    transactions begun earlier keep the old placement;
    /// 2. drain those pre-flip transactions;
    /// 3. register every known file group on the target (idempotent — a
    ///    runtime-attached shard has none yet);
    /// 4. copy the prefix's link rows from every other shard
    ///    (`ExportLinks` → `ImportLinks`, then a destructive export only
    ///    after the import acked);
    /// 5. re-home the host's `sys_datalinks` rows;
    /// 6. settle the map and wake parked transactions.
    ///
    /// Returns the number of link rows moved. On any error the map entry
    /// is rolled back to the pre-flip placement; already-imported rows are
    /// harmless duplicates-in-waiting that a retry will skip
    /// (`ImportLinks` is idempotent). Unlinked-history rows stay on their
    /// original shard: only *linked* entries move, which is all routing
    /// needs (history is consulted where the unlink ran).
    pub fn migrate_prefix(&self, prefix: &str, to: &str) -> HostResult<u64> {
        self.connector_for(to)?;
        let prefix = prefix.trim_end_matches('/');
        if prefix.is_empty() {
            return Err(HostError::Usage("cannot migrate the root prefix".into()));
        }
        if !self.inner.shards.enabled() {
            return Err(HostError::Usage(
                "shard routing is not enabled (call set_shards first)".into(),
            ));
        }
        let flip = self
            .inner
            .shards
            .begin_migration(prefix, to)
            .map_err(|e| HostError::Usage(e.to_string()))?;
        obs::info!("hostdb::shard", "migrating prefix {prefix} to {to} (flip epoch {flip})");
        let result = self.run_migration(prefix, to, flip);
        match &result {
            Ok(moved) => {
                self.inner.shards.finish_migration(prefix);
                self.inner.metrics.shard_migrations.fetch_add(1, Ordering::Relaxed);
                self.inner.metrics.shard_migrated_rows.fetch_add(*moved, Ordering::Relaxed);
                obs::info!("hostdb::shard", "prefix {prefix} now on {to} ({moved} rows moved)");
            }
            Err(e) => {
                self.inner.shards.abort_migration(prefix);
                obs::warn!("hostdb::shard", "migration of {prefix} to {to} failed: {e}");
            }
        }
        result
    }

    fn run_migration(&self, prefix: &str, to: &str, flip: u64) -> HostResult<u64> {
        self.inner
            .shards
            .drain_below(flip, self.inner.shard_drain_timeout)
            .map_err(|e| HostError::Usage(e.to_string()))?;

        // The target may have been attached after CREATE TABLE: make sure
        // it knows every file group before rows referencing them arrive.
        let specs: Vec<GroupSpec> = self
            .inner
            .dl_cols
            .read()
            .iter()
            .map(|((tbl, col), info)| GroupSpec {
                grp_id: info.grp_id,
                dbid: self.inner.dbid,
                table_name: tbl.clone(),
                column_name: col.clone(),
                access: info.access,
                recovery: info.recovery,
            })
            .collect();
        let to_conn = self.checkout_conn(to)?;
        for spec in specs {
            match to_conn.call(DlfmRequest::RegisterGroup(spec))? {
                DlfmResponse::Ok => {}
                DlfmResponse::Err(e) => {
                    return Err(HostError::Dlfm { error: e, txn_rolled_back: false })
                }
                other => return Err(HostError::Rpc(format!("unexpected {other:?}"))),
            }
        }

        // Copy from every other shard: the prefix's subtree may span
        // several ring positions (one per directory).
        let mut moved = 0u64;
        for server in self.servers() {
            if server == to {
                continue;
            }
            let from_conn = self.checkout_conn(&server)?;
            let rows = match from_conn
                .call(DlfmRequest::ExportLinks { prefix: prefix.to_string(), remove: false })?
            {
                DlfmResponse::Links(rows) => rows,
                DlfmResponse::Err(e) => {
                    return Err(HostError::Dlfm { error: e, txn_rolled_back: false })
                }
                other => return Err(HostError::Rpc(format!("unexpected {other:?}"))),
            };
            if !rows.is_empty() {
                moved += rows.len() as u64;
                match to_conn.call(DlfmRequest::ImportLinks { entries: rows })? {
                    DlfmResponse::Count(_) => {}
                    DlfmResponse::Err(e) => {
                        return Err(HostError::Dlfm { error: e, txn_rolled_back: false })
                    }
                    other => return Err(HostError::Rpc(format!("unexpected {other:?}"))),
                }
                // Destructive pass only now that the import acked.
                match from_conn
                    .call(DlfmRequest::ExportLinks { prefix: prefix.to_string(), remove: true })?
                {
                    DlfmResponse::Links(_) => {}
                    DlfmResponse::Err(e) => {
                        return Err(HostError::Dlfm { error: e, txn_rolled_back: false })
                    }
                    other => return Err(HostError::Rpc(format!("unexpected {other:?}"))),
                }
            }
            self.checkin_conn(&server, from_conn);
        }
        self.checkin_conn(to, to_conn);

        // Re-home the host's own bookkeeping so Reconcile/Restore keep
        // querying the right server ('0' is '/' + 1: the subtree range).
        // One UPDATE per source server: the equality on `server` lets the
        // (server, filename) index bound the scan to the migrated rows —
        // a bare filename range would full-scan sys_datalinks and convoy
        // with every concurrent link/unlink on the X locks it accretes.
        let mut s = Session::new(&self.inner.db);
        s.begin()?;
        for server in self.servers() {
            if server == to {
                continue;
            }
            s.exec_params(
                "UPDATE sys_datalinks SET server = ? \
                 WHERE server = ? AND filename >= ? AND filename < ?",
                &[
                    Value::str(to),
                    Value::str(server),
                    Value::str(format!("{prefix}/")),
                    Value::str(format!("{prefix}0")),
                ],
            )?;
        }
        s.commit()?;
        Ok(moved)
    }
}

/// Render local + remote spans of one transaction as an indented tree.
/// Cross-process edges come for free: the wire frame carries the parent
/// span id, so a remote agent span's parent IS the host-side rpc span and
/// the stitched tree reads top to bottom through the whole deployment.
fn render_span_tree(local: &[obs::SpanEvent], remotes: &[obs::ProcessTrace]) -> String {
    struct Node {
        process: String,
        layer: String,
        op: String,
        ok: bool,
        start: i64,
        dur_micros: u64,
        span_id: u64,
        parent: u64,
    }
    let mut nodes: Vec<Node> = Vec::new();
    for s in local {
        nodes.push(Node {
            process: "host".into(),
            layer: s.layer.as_str().into(),
            op: s.op.into(),
            ok: s.outcome == obs::Outcome::Ok,
            start: s.start_micros as i64,
            dur_micros: s.duration.as_micros() as u64,
            span_id: s.span_id,
            parent: s.parent_span_id,
        });
    }
    for r in remotes {
        for s in &r.spans {
            nodes.push(Node {
                process: r.name.clone(),
                layer: s.layer.clone(),
                op: s.op.clone(),
                ok: s.ok,
                start: (s.start_micros as i64).saturating_add(r.clock_offset_micros),
                dur_micros: s.dur_micros,
                span_id: s.span_id,
                parent: s.parent_span_id,
            });
        }
    }
    let by_id: HashMap<u64, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.span_id, i)).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        match by_id.get(&n.parent) {
            Some(&p) if n.parent != 0 && p != i => children[p].push(i),
            _ => roots.push(i),
        }
    }
    let order = |xs: &mut Vec<usize>, nodes: &[Node]| {
        xs.sort_by_key(|&i| (nodes[i].start, nodes[i].span_id));
    };
    for c in &mut children {
        order(c, &nodes);
    }
    order(&mut roots, &nodes);
    fn render(out: &mut String, nodes: &[Node], children: &[Vec<usize>], i: usize, depth: usize) {
        let n = &nodes[i];
        out.push_str(&format!(
            "{:indent$}[{}/{}] {} {} {}us\n",
            "",
            n.process,
            n.layer,
            n.op,
            if n.ok { "ok" } else { "err" },
            n.dur_micros,
            indent = depth * 2,
        ));
        for &c in &children[i] {
            render(out, nodes, children, c, depth + 1);
        }
    }
    let mut out = String::new();
    for r in roots {
        render(&mut out, &nodes, &children, r, 0);
    }
    if out.is_empty() {
        out.push_str("(no spans retained — ring may have wrapped)\n");
    }
    out
}

/// One datalink operation performed in the current transaction, tracked so
/// savepoint rollback can send the matching `in_backout` request (§3.2).
#[derive(Debug, Clone)]
pub(crate) struct DlOp {
    pub link: bool,
    pub url: DatalinkUrl,
    /// The shard the operation was routed to (the URL's server name when
    /// hash routing is disabled); backout must target the same shard.
    pub shard: String,
    pub rec_id: i64,
    pub grp_id: i64,
}

pub(crate) struct HostTxn {
    pub xid: i64,
    /// Shard-map epoch pinned at begin: placement stays stable for the
    /// transaction's lifetime, and migrations drain on it.
    pub epoch: u64,
    pub touched: BTreeSet<String>,
    pub dl_ops: Vec<DlOp>,
    /// When the transaction began (observability clock), for the autopsy
    /// latency threshold.
    pub start_micros: u64,
    /// Trace ids of every statement (and the commit) this transaction
    /// ran: the autopsy assembles the cross-process span tree from them.
    pub trace_ids: BTreeSet<u64>,
}

/// A savepoint covering both local data and datalink operations.
pub struct HostSavepoint {
    db_sp: minidb::Savepoint,
    dl_ops_len: usize,
}

/// An application session on the host database.
pub struct HostSession {
    host: HostDb,
    session: Session,
    conns: HashMap<String, DlfmConn>,
    txn: Option<HostTxn>,
}

impl HostSession {
    /// The host handle.
    pub fn host(&self) -> &HostDb {
        &self.host
    }

    /// Id of the open transaction, if any.
    pub fn xid(&self) -> Option<i64> {
        self.txn.as_ref().map(|t| t.xid)
    }

    // ------------------------------------------------------------------
    // Transactions & 2PC
    // ------------------------------------------------------------------

    /// Begin an explicit transaction.
    pub fn begin(&mut self) -> HostResult<()> {
        if self.txn.is_some() {
            return Err(HostError::Usage("transaction already open".into()));
        }
        self.session.begin()?;
        self.txn = Some(HostTxn {
            xid: self.host.next_xid(),
            epoch: self.host.inner.shards.begin_txn(),
            touched: BTreeSet::new(),
            dl_ops: Vec::new(),
            start_micros: obs::journal::now_micros(),
            trace_ids: obs::current_ctx().map(|c| c.trace_id).into_iter().collect(),
        });
        Ok(())
    }

    /// Commit: presumed-abort two-phase commit across every DLFM this
    /// transaction touched, with the host's own commit in the middle.
    pub fn commit(&mut self) -> HostResult<()> {
        // Child of the statement span under autocommit; a fresh root when
        // the application commits an explicit transaction.
        let mut span = obs::span(obs::Layer::Host, "commit");
        let mut txn = self
            .txn
            .take()
            .ok_or_else(|| HostError::Usage("no transaction open".into()))
            .inspect_err(|_| span.fail())?;
        txn.trace_ids.insert(span.ctx().trace_id);
        let epoch = txn.epoch;
        let (xid, start_micros, trace_ids) = (txn.xid, txn.start_micros, txn.trace_ids.clone());
        let result = self.commit_txn(txn, &mut span);
        // The shard-map pin ends only after the outcome is settled either
        // way: a migration must not move rows this transaction's phase 2
        // may still be writing.
        self.host.inner.shards.end_txn(epoch);
        self.host.maybe_autopsy(xid, start_micros, &trace_ids, result.is_err());
        result
    }

    fn commit_txn(&mut self, txn: HostTxn, span: &mut obs::trace::SpanGuard) -> HostResult<()> {
        let xid = txn.xid;

        // Phase 1: prepare every touched DLFM.
        let mut participants = Vec::new();
        for server in &txn.touched {
            let vote =
                self.conn(server).and_then(|conn| Ok(conn.call(DlfmRequest::Prepare { xid })?));
            match vote {
                Ok(DlfmResponse::Prepared { read_only: false }) => {
                    participants.push(server.clone())
                }
                Ok(DlfmResponse::Prepared { read_only: true }) => {}
                Err(e) => {
                    // Transport failure: the vote is unknown, so abort
                    // globally like a vote of "no". Skipping the global
                    // abort here would leave every participant — including
                    // this one, if the prepare never reached it — with an
                    // open forward transaction holding locks, parked behind
                    // a pooled connection. (A prepare that did land is
                    // covered by presumed abort: no commit record exists.)
                    self.host.inner.metrics.prepare_failures.fetch_add(1, Ordering::Relaxed);
                    span.fail();
                    obs::warn!(
                        "hostdb::twopc",
                        "prepare transport failure on {server} for xid {xid}, \
                         aborting globally: {e}"
                    );
                    self.abort_everywhere(&txn);
                    self.session.rollback();
                    self.host.inner.metrics.rollbacks.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
                Ok(DlfmResponse::Err(e)) => {
                    // Global abort: tell everyone (even already-prepared
                    // participants) and roll back locally (paper §3.3).
                    self.host.inner.metrics.prepare_failures.fetch_add(1, Ordering::Relaxed);
                    span.fail();
                    obs::warn!(
                        "hostdb::twopc",
                        "prepare failed on {server} for xid {xid}, aborting globally: {e}"
                    );
                    self.abort_everywhere(&txn);
                    self.session.rollback();
                    self.host.inner.metrics.rollbacks.fetch_add(1, Ordering::Relaxed);
                    return Err(HostError::PrepareFailed {
                        server: server.clone(),
                        reason: e.to_string(),
                    });
                }
                Ok(other) => {
                    span.fail();
                    self.abort_everywhere(&txn);
                    self.session.rollback();
                    return Err(HostError::Rpc(format!("unexpected prepare response {other:?}")));
                }
            }
        }

        if participants.is_empty() {
            // Local-only transaction.
            self.session.commit()?;
            self.host.inner.metrics.commits.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }

        // Decision: force the commit record, then commit locally. One
        // coordinator-log force may cover many concurrent decisions (group
        // commit); `false` means a simulated host crash raced the force,
        // so the decision cannot be claimed durable.
        if !self
            .host
            .inner
            .coord_log
            .append_forced(CoordRecord::Commit { xid, servers: participants.clone() })
        {
            self.abort_everywhere(&txn);
            self.session.rollback();
            self.host.inner.metrics.rollbacks.fetch_add(1, Ordering::Relaxed);
            return Err(HostError::Db(minidb::DbError::Offline));
        }
        self.session.commit()?;

        // Phase 2: synchronous by default — the paper found the commit
        // request *must* be synchronous or distributed deadlocks form (§4).
        //
        // The commit decision is already durable, so NOTHING past this
        // point may surface an error to the application: the transaction
        // IS committed. A transport failure here used to propagate `Err`
        // out of `commit()` — the app saw an abort for a committed
        // transaction and could retry into a double link. Instead, note
        // the error, retire the broken connection, and leave the commit
        // record unfinished so the resolver re-drives phase 2.
        let synchronous = self.host.synchronous_commit();
        let mut all_acked = true;
        for server in &participants {
            let outcome = (|| -> HostResult<Option<DlfmResponse>> {
                let conn = self.conn(server)?;
                if synchronous {
                    Ok(Some(conn.call(DlfmRequest::Commit { xid })?))
                } else {
                    conn.post(DlfmRequest::Commit { xid })?;
                    Ok(None)
                }
            })();
            match outcome {
                // Posted asynchronously (the §4 ablation): no ack to await.
                Ok(None) => {}
                Ok(Some(DlfmResponse::Ok)) => {}
                Ok(Some(DlfmResponse::Err(e))) => {
                    // DLFM-side failure: the participant stays prepared
                    // until the resolver re-drives it; keep that visible.
                    self.host.note_rpc_error("phase-2 commit", server, &e);
                    all_acked = false;
                }
                Ok(Some(other)) => {
                    self.host.note_rpc_error(
                        "phase-2 commit",
                        server,
                        &format!("unexpected response {other:?}"),
                    );
                    all_acked = false;
                }
                Err(e) => {
                    self.host.inner.metrics.phase2_transport_errors.fetch_add(1, Ordering::Relaxed);
                    self.host.note_rpc_error("phase-2 commit", server, &e);
                    // The cached connection is dead; a later checkout
                    // redials instead of reusing the broken multiplexer.
                    self.conns.remove(server);
                    all_acked = false;
                }
            }
        }
        if all_acked {
            self.host.inner.coord_log.append(CoordRecord::End { xid });
        }
        self.host.inner.metrics.commits.fetch_add(1, Ordering::Relaxed);
        self.host.inner.metrics.twopc_commits.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Roll back the open transaction everywhere.
    pub fn rollback(&mut self) {
        if let Some(txn) = self.txn.take() {
            self.abort_everywhere(&txn);
            self.session.rollback();
            self.host.inner.metrics.rollbacks.fetch_add(1, Ordering::Relaxed);
            self.host.inner.shards.end_txn(txn.epoch);
            self.host.maybe_autopsy(txn.xid, txn.start_micros, &txn.trace_ids, true);
        }
    }

    fn abort_everywhere(&mut self, txn: &HostTxn) {
        for server in &txn.touched {
            if let Ok(conn) = self.conn(server) {
                match conn.call(DlfmRequest::Abort { xid: txn.xid }) {
                    Ok(DlfmResponse::Ok) => {}
                    Ok(DlfmResponse::Err(e)) => self.host.note_rpc_error("abort", server, &e),
                    Ok(other) => self.host.note_rpc_error(
                        "abort",
                        server,
                        &format!("unexpected response {other:?}"),
                    ),
                    Err(e) => {
                        self.host.note_rpc_error("abort", server, &e);
                        // Transport failure: this cached connection is dead.
                        self.conns.remove(server);
                    }
                }
            }
        }
    }

    /// Create a savepoint covering local data and datalink operations.
    pub fn savepoint(&mut self) -> HostResult<HostSavepoint> {
        let txn =
            self.txn.as_ref().ok_or_else(|| HostError::Usage("no transaction open".into()))?;
        Ok(HostSavepoint { db_sp: self.session.savepoint()?, dl_ops_len: txn.dl_ops.len() })
    }

    /// Roll back to a savepoint: local undo plus `in_backout` requests for
    /// the datalink operations performed since (§3.2).
    pub fn rollback_to(&mut self, sp: &HostSavepoint) -> HostResult<()> {
        let (xid, to_undo) = {
            let txn =
                self.txn.as_mut().ok_or_else(|| HostError::Usage("no transaction open".into()))?;
            let to_undo: Vec<DlOp> = txn.dl_ops.split_off(sp.dl_ops_len);
            (txn.xid, to_undo)
        };
        // Undo newest-first; an error here forces full rollback (the paper:
        // "it is not possible to rollback a rollback").
        for op in to_undo.iter().rev() {
            let req = if op.link {
                DlfmRequest::LinkFile {
                    xid,
                    rec_id: op.rec_id,
                    grp_id: op.grp_id,
                    filename: op.url.path.clone(),
                    in_backout: true,
                }
            } else {
                DlfmRequest::UnlinkFile {
                    xid,
                    rec_id: op.rec_id,
                    grp_id: op.grp_id,
                    filename: op.url.path.clone(),
                    in_backout: true,
                }
            };
            let conn = self.conn(&op.shard)?;
            match conn.call(req)? {
                DlfmResponse::Ok => {}
                DlfmResponse::Err(e) => {
                    self.rollback();
                    return Err(HostError::Dlfm { error: e, txn_rolled_back: true });
                }
                other => {
                    self.rollback();
                    return Err(HostError::Rpc(format!("unexpected backout response {other:?}")));
                }
            }
        }
        self.session.rollback_to(sp.db_sp)?;
        Ok(())
    }

    fn rollback_to_db_only(&mut self, sp: &minidb::Savepoint) {
        let _ = self.session.rollback_to(*sp);
    }

    // ------------------------------------------------------------------
    // Statement execution with datalink interception
    // ------------------------------------------------------------------

    /// Execute a statement.
    pub fn exec(&mut self, sql: &str) -> HostResult<ExecResult> {
        self.exec_params(sql, &[])
    }

    /// Execute a statement with parameters, routing datalink side effects
    /// to the right DLFMs.
    pub fn exec_params(&mut self, sql: &str, params: &[Value]) -> HostResult<ExecResult> {
        // The statement boundary starts a fresh trace; everything the
        // statement causes — RPC calls, DLFM agent work, minidb activity —
        // carries this trace id.
        let mut span = obs::span_root(obs::Layer::Host, "stmt");
        let stmt =
            minidb::sql::parser::parse(sql).map_err(HostError::Db).inspect_err(|_| span.fail())?;
        let autocommit = self.txn.is_none();
        if autocommit {
            self.begin().inspect_err(|_| span.fail())?;
        }
        // Under an explicit transaction, every statement roots its own
        // trace: the autopsy collects them all.
        if let Some(t) = self.txn.as_mut() {
            t.trace_ids.insert(span.ctx().trace_id);
        }
        let result = self.exec_stmt(&stmt, params);
        match result {
            Ok(r) => {
                if autocommit {
                    self.commit().inspect_err(|_| span.fail())?;
                }
                Ok(r)
            }
            Err(e) => {
                span.fail();
                if autocommit || self.txn_lost(&e) {
                    self.rollback();
                }
                Err(e)
            }
        }
    }

    /// Did this error force the loss of the transaction?
    fn txn_lost(&self, e: &HostError) -> bool {
        match e {
            HostError::Db(db) => db.is_rollback_forced(),
            // A severe (retryable-class) DLFM error means the DLFM's local
            // database already rolled the sub-transaction back: the host
            // must roll back the full transaction (paper §3.2).
            HostError::Dlfm { error: DlfmError::Db { retryable, .. }, .. } => *retryable,
            _ => false,
        }
    }

    fn exec_stmt(&mut self, stmt: &Stmt, params: &[Value]) -> HostResult<ExecResult> {
        match stmt {
            Stmt::Insert { table, .. } if !self.host.dl_columns_of(table).is_empty() => {
                self.exec_insert_with_datalinks(stmt, params)
            }
            Stmt::Delete { table, filter } if !self.host.dl_columns_of(table).is_empty() => {
                self.exec_delete_with_datalinks(table, filter.as_ref(), stmt, params)
            }
            Stmt::Update { table, sets, filter }
                if sets.iter().any(|(c, _)| self.host.dl_column(table, c).is_some()) =>
            {
                self.exec_update_with_datalinks(table, sets, filter.as_ref(), stmt, params)
            }
            Stmt::DropTable { name } if !self.host.dl_columns_of(name).is_empty() => {
                Err(HostError::Usage(format!(
                    "use HostSession::drop_table to drop {name}: it has DATALINK columns"
                )))
            }
            _ => Ok(self.session.exec_ast(stmt, params)?),
        }
    }

    fn exec_insert_with_datalinks(
        &mut self,
        stmt: &Stmt,
        params: &[Value],
    ) -> HostResult<ExecResult> {
        let Stmt::Insert { table, columns, values } = stmt else { unreachable!() };
        let schema = self.host.db().table_schema(table)?;
        // Figure out which value expression feeds each datalink column.
        let col_names: Vec<String> = match columns {
            Some(cols) => cols.clone(),
            None => schema.column_names(),
        };
        let mut links: Vec<(String, DlColumn, DatalinkUrl)> = Vec::new();
        for (cname, vexpr) in col_names.iter().zip(values) {
            if let Some(info) = self.host.dl_column(table, cname) {
                let v = minidb::eval::eval_standalone(vexpr, params)?;
                if let Value::Str(url) = v {
                    links.push((cname.clone(), info, DatalinkUrl::parse(&url)?));
                } else if !v.is_null() {
                    return Err(HostError::Usage(format!(
                        "datalink column {cname} must be a URL string or NULL"
                    )));
                }
            }
        }
        // Statement atomicity: remember where we started.
        let sp = self.session.savepoint()?;
        let mut performed: Vec<DlOp> = Vec::new();
        let result = (|| -> HostResult<ExecResult> {
            for (cname, info, url) in &links {
                let op = self.link(url, info)?;
                performed.push(op.clone());
                self.session.exec_params(
                    "INSERT INTO sys_datalinks (tbl, col, server, filename, rec_id) \
                     VALUES (?, ?, ?, ?, ?)",
                    &[
                        Value::str(table.clone()),
                        Value::str(cname.clone()),
                        Value::str(op.shard.clone()),
                        Value::str(url.path.clone()),
                        Value::Int(op.rec_id),
                    ],
                )?;
            }
            Ok(self.session.exec_ast(stmt, params)?)
        })();
        match result {
            Ok(r) => Ok(r),
            Err(e) => {
                // Undo the statement: local savepoint + in_backout links.
                if !self.txn_lost(&e) {
                    self.backout_ops(&performed);
                    self.rollback_to_db_only(&sp);
                }
                Err(e)
            }
        }
    }

    fn exec_delete_with_datalinks(
        &mut self,
        table: &str,
        filter: Option<&Expr>,
        stmt: &Stmt,
        params: &[Value],
    ) -> HostResult<ExecResult> {
        let dl_cols = self.host.dl_columns_of(table);
        let old = self.probe_dl_values(table, &dl_cols, filter, params)?;
        let sp = self.session.savepoint()?;
        let mut performed: Vec<DlOp> = Vec::new();
        let result = (|| -> HostResult<ExecResult> {
            for (cname, info, url) in &old {
                let op = self.unlink(url, info)?;
                performed.push(op.clone());
                self.session.exec_params(
                    "DELETE FROM sys_datalinks WHERE server = ? AND filename = ?",
                    &[Value::str(op.shard.clone()), Value::str(url.path.clone())],
                )?;
                let _ = cname;
            }
            Ok(self.session.exec_ast(stmt, params)?)
        })();
        match result {
            Ok(r) => Ok(r),
            Err(e) => {
                if !self.txn_lost(&e) {
                    self.backout_ops(&performed);
                    self.rollback_to_db_only(&sp);
                }
                Err(e)
            }
        }
    }

    fn exec_update_with_datalinks(
        &mut self,
        table: &str,
        sets: &[(String, Expr)],
        filter: Option<&Expr>,
        stmt: &Stmt,
        params: &[Value],
    ) -> HostResult<ExecResult> {
        // Only the datalink columns being SET participate.
        let dl_cols: Vec<(String, DlColumn)> = sets
            .iter()
            .filter_map(|(c, _)| self.host.dl_column(table, c).map(|i| (c.clone(), i)))
            .collect();
        let old = self.probe_dl_values(table, &dl_cols, filter, params)?;
        let sp = self.session.savepoint()?;
        let mut performed: Vec<DlOp> = Vec::new();
        let result = (|| -> HostResult<ExecResult> {
            // Unlink every old value of the updated datalink columns.
            for (_, info, url) in &old {
                let op = self.unlink(url, info)?;
                performed.push(op.clone());
                self.session.exec_params(
                    "DELETE FROM sys_datalinks WHERE server = ? AND filename = ?",
                    &[Value::str(op.shard.clone()), Value::str(url.path.clone())],
                )?;
            }
            // Link the new values (once per matched row).
            let matched = old.len().max(1);
            for (cname, new_expr) in sets {
                let Some(info) = self.host.dl_column(table, cname) else { continue };
                let v = minidb::eval::eval_standalone(new_expr, params)?;
                let Value::Str(url) = v else { continue };
                let url = DatalinkUrl::parse(&url)?;
                for _ in 0..matched.min(1) {
                    let op = self.link(&url, &info)?;
                    performed.push(op.clone());
                    self.session.exec_params(
                        "INSERT INTO sys_datalinks (tbl, col, server, filename, rec_id) \
                         VALUES (?, ?, ?, ?, ?)",
                        &[
                            Value::str(table),
                            Value::str(cname.clone()),
                            Value::str(op.shard.clone()),
                            Value::str(url.path.clone()),
                            Value::Int(op.rec_id),
                        ],
                    )?;
                }
            }
            Ok(self.session.exec_ast(stmt, params)?)
        })();
        match result {
            Ok(r) => Ok(r),
            Err(e) => {
                if !self.txn_lost(&e) {
                    self.backout_ops(&performed);
                    self.rollback_to_db_only(&sp);
                }
                Err(e)
            }
        }
    }

    /// Read current datalink values of the rows a WHERE clause matches.
    fn probe_dl_values(
        &mut self,
        table: &str,
        dl_cols: &[(String, DlColumn)],
        filter: Option<&Expr>,
        params: &[Value],
    ) -> HostResult<Vec<(String, DlColumn, DatalinkUrl)>> {
        if dl_cols.is_empty() {
            return Ok(Vec::new());
        }
        let probe = Stmt::Select(SelectStmt {
            projection: Projection::Items(
                dl_cols.iter().map(|(c, _)| SelectItem::Expr(Expr::Col(c.clone()))).collect(),
            ),
            table: table.to_string(),
            filter: filter.cloned(),
            order_by: Vec::new(),
            for_update: true,
            for_share: false,
            except: None,
        });
        let rows = self.session.exec_ast(&probe, params)?.rows();
        let mut out = Vec::new();
        for row in rows {
            for ((cname, info), v) in dl_cols.iter().zip(&row) {
                if let Value::Str(url) = v {
                    out.push((cname.clone(), info.clone(), DatalinkUrl::parse(url)?));
                }
            }
        }
        Ok(out)
    }

    fn backout_ops(&mut self, performed: &[DlOp]) {
        let Some(xid) = self.txn.as_ref().map(|t| t.xid) else { return };
        for op in performed.iter().rev() {
            let req = if op.link {
                DlfmRequest::LinkFile {
                    xid,
                    rec_id: op.rec_id,
                    grp_id: op.grp_id,
                    filename: op.url.path.clone(),
                    in_backout: true,
                }
            } else {
                DlfmRequest::UnlinkFile {
                    xid,
                    rec_id: op.rec_id,
                    grp_id: op.grp_id,
                    filename: op.url.path.clone(),
                    in_backout: true,
                }
            };
            if let Ok(conn) = self.conn(&op.shard) {
                match conn.call(req) {
                    Ok(DlfmResponse::Ok) => {}
                    Ok(DlfmResponse::Err(e)) => self.host.note_rpc_error("backout", &op.shard, &e),
                    Ok(other) => self.host.note_rpc_error(
                        "backout",
                        &op.shard,
                        &format!("unexpected response {other:?}"),
                    ),
                    Err(e) => {
                        self.host.note_rpc_error("backout", &op.shard, &e);
                        self.conns.remove(&op.shard);
                    }
                }
            }
        }
        if let Some(txn) = self.txn.as_mut() {
            let keep = txn.dl_ops.len().saturating_sub(performed.len());
            txn.dl_ops.truncate(keep);
        }
    }

    // ------------------------------------------------------------------
    // Datalink primitives
    // ------------------------------------------------------------------

    fn link(&mut self, url: &DatalinkUrl, info: &DlColumn) -> HostResult<DlOp> {
        let shard = self.route(url)?;
        let rec_id = self.host.next_rec_id();
        let op = DlOp { link: true, url: url.clone(), shard, rec_id, grp_id: info.grp_id };
        self.dl_request(
            &op.shard,
            DlfmRequest::LinkFile {
                xid: self.require_xid()?,
                rec_id,
                grp_id: info.grp_id,
                filename: url.path.clone(),
                in_backout: false,
            },
        )?;
        self.host.inner.metrics.links.fetch_add(1, Ordering::Relaxed);
        if let Some(txn) = self.txn.as_mut() {
            txn.dl_ops.push(op.clone());
        }
        Ok(op)
    }

    fn unlink(&mut self, url: &DatalinkUrl, info: &DlColumn) -> HostResult<DlOp> {
        let shard = self.route(url)?;
        let rec_id = self.host.next_rec_id();
        let op = DlOp { link: false, url: url.clone(), shard, rec_id, grp_id: info.grp_id };
        self.dl_request(
            &op.shard,
            DlfmRequest::UnlinkFile {
                xid: self.require_xid()?,
                rec_id,
                grp_id: info.grp_id,
                filename: url.path.clone(),
                in_backout: false,
            },
        )?;
        self.host.inner.metrics.unlinks.fetch_add(1, Ordering::Relaxed);
        if let Some(txn) = self.txn.as_mut() {
            txn.dl_ops.push(op.clone());
        }
        Ok(op)
    }

    /// The shard serving `url`: the shard map's placement under the
    /// transaction's pinned epoch (the current epoch outside one), or the
    /// URL's server name when hash routing is disabled.
    fn route(&self, url: &DatalinkUrl) -> HostResult<String> {
        let epoch = match self.txn.as_ref() {
            Some(txn) => txn.epoch,
            None => self.host.inner.shards.epoch(),
        };
        self.host.route_datalink(url, epoch)
    }

    fn require_xid(&self) -> HostResult<i64> {
        self.txn
            .as_ref()
            .map(|t| t.xid)
            .ok_or_else(|| HostError::Usage("datalink operation outside a transaction".into()))
    }

    pub(crate) fn dl_request(
        &mut self,
        server: &str,
        req: DlfmRequest,
    ) -> HostResult<DlfmResponse> {
        let xid = self.require_xid()?;
        // First touch: make the sub-transaction explicit.
        let first_touch = self.txn.as_ref().map(|t| !t.touched.contains(server)).unwrap_or(false);
        let conn = self.conn(server)?;
        if first_touch {
            match conn.call(DlfmRequest::BeginTxn { xid })? {
                DlfmResponse::Ok => {}
                DlfmResponse::Err(e) => {
                    return Err(HostError::Dlfm { error: e, txn_rolled_back: false })
                }
                other => return Err(HostError::Rpc(format!("unexpected {other:?}"))),
            }
            if let Some(txn) = self.txn.as_mut() {
                txn.touched.insert(server.to_string());
            }
        }
        let conn = self.conn(server)?;
        match conn.call(req)? {
            DlfmResponse::Err(e) => {
                let severe = matches!(&e, DlfmError::Db { retryable: true, .. });
                Err(HostError::Dlfm { error: e, txn_rolled_back: severe })
            }
            other => Ok(other),
        }
    }

    pub(crate) fn conn(&mut self, server: &str) -> HostResult<&DlfmConn> {
        if !self.conns.contains_key(server) {
            // Reuse an idle pooled connection when one exists; a fresh
            // dedicated-mode connection costs a whole child-agent thread.
            let conn = self.host.checkout_conn(server)?;
            self.conns.insert(server.to_string(), conn);
        }
        Ok(&self.conns[server])
    }

    // ------------------------------------------------------------------
    // Queries & conveniences
    // ------------------------------------------------------------------

    /// Query rows.
    pub fn query(&mut self, sql: &str, params: &[Value]) -> HostResult<Vec<Row>> {
        Ok(self.exec_params(sql, params)?.rows())
    }

    /// Query one integer.
    pub fn query_int(&mut self, sql: &str, params: &[Value]) -> HostResult<i64> {
        Ok(self.session.query_int(sql, params)?)
    }

    /// Ask the DLFM for a read token for a fully-controlled linked file
    /// (applications then read through the DLFF with it — Figure 3's
    /// "direct file access" with an access token).
    pub fn read_token(&mut self, url: &str) -> HostResult<String> {
        let url = DatalinkUrl::parse(url)?;
        let shard = self.route(&url)?;
        let conn = self.conn(&shard)?;
        match conn.call(DlfmRequest::IssueToken { filename: url.path.clone() })? {
            DlfmResponse::Token(t) => Ok(t),
            DlfmResponse::Err(e) => Err(HostError::Dlfm { error: e, txn_rolled_back: false }),
            other => Err(HostError::Rpc(format!("unexpected {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // DDL with datalink columns
    // ------------------------------------------------------------------

    /// CREATE TABLE with datalink column options. Registers one file group
    /// per DATALINK column on every attached DLFM.
    pub fn create_table(&mut self, sql: &str, dl_specs: &[DatalinkSpec]) -> HostResult<()> {
        let stmt = minidb::sql::parser::parse(sql).map_err(HostError::Db)?;
        let Stmt::CreateTable { name, columns } = &stmt else {
            return Err(HostError::Usage("create_table requires a CREATE TABLE".into()));
        };
        self.session.exec_ast(&stmt, &[])?;
        for (cname, ty, _) in columns {
            if *ty != minidb::DataType::Datalink {
                continue;
            }
            let spec = dl_specs.iter().find(|s| s.column.eq_ignore_ascii_case(cname));
            let (access, recovery) = match spec {
                Some(s) => (s.access, s.recovery),
                None => (AccessControl::Full, true),
            };
            let grp_id = self.host.next_grp_id();
            self.session.exec_params(
                "INSERT INTO sys_dlcols (tbl, col, grp_id, access_ctl, recovery) \
                 VALUES (?, ?, ?, ?, ?)",
                &[
                    Value::str(name.clone()),
                    Value::str(cname.clone()),
                    Value::Int(grp_id),
                    Value::Int(access.code()),
                    Value::Int(recovery as i64),
                ],
            )?;
            self.host.register_dl_column(name, cname, DlColumn { grp_id, access, recovery });
            let spec = GroupSpec {
                grp_id,
                dbid: self.host.dbid(),
                table_name: name.clone(),
                column_name: cname.clone(),
                access,
                recovery,
            };
            for server in self.host.servers() {
                let conn = self.conn(&server)?;
                match conn.call(DlfmRequest::RegisterGroup(spec.clone()))? {
                    DlfmResponse::Ok => {}
                    DlfmResponse::Err(e) => {
                        return Err(HostError::Dlfm { error: e, txn_rolled_back: false })
                    }
                    other => return Err(HostError::Rpc(format!("unexpected {other:?}"))),
                }
            }
        }
        Ok(())
    }

    /// DROP TABLE with datalink columns: deletes the file groups at every
    /// DLFM inside a dedicated two-phase-committed transaction, then drops
    /// the table (paper §3.5: the unlinking itself is asynchronous).
    pub fn drop_table(&mut self, table: &str) -> HostResult<()> {
        if self.txn.is_some() {
            return Err(HostError::Usage(
                "drop_table must run outside an explicit transaction".into(),
            ));
        }
        let dl_cols = self.host.dl_columns_of(table);
        self.begin()?;
        let result = (|| -> HostResult<()> {
            for (_, info) in &dl_cols {
                let rec_id = self.host.next_rec_id();
                for server in self.host.servers() {
                    let xid = self.require_xid()?;
                    let resp = self.dl_request(
                        &server,
                        DlfmRequest::DeleteGroup { xid, grp_id: info.grp_id, rec_id },
                    )?;
                    let _ = resp;
                }
            }
            self.session
                .exec_params("DELETE FROM sys_dlcols WHERE tbl = ?", &[Value::str(table)])?;
            self.session
                .exec_params("DELETE FROM sys_datalinks WHERE tbl = ?", &[Value::str(table)])?;
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.commit()?;
                // The local DDL is auto-committed after the group deletion
                // committed globally.
                self.session.exec_params(&format!("DROP TABLE {table}"), &[])?;
                self.host.forget_dl_columns(table);
                Ok(())
            }
            Err(e) => {
                self.rollback();
                Err(e)
            }
        }
    }
}

impl Drop for HostSession {
    fn drop(&mut self) {
        self.rollback();
        // Hand the session's connections back for reuse (each is
        // health-checked at checkin; broken ones are retired).
        for (server, conn) in self.conns.drain() {
            self.host.checkin_conn(&server, conn);
        }
    }
}
