//! # hostdb — the host relational database with the DataLinks engine
//!
//! The host side of the DataLinks architecture (paper Figure 2): a
//! relational database whose SQL surface recognises `DATALINK` columns and
//! drives one or more [`dlfm`] servers transactionally:
//!
//! * INSERT of a datalink value links the referenced file; DELETE unlinks
//!   it; UPDATE does both; DROP TABLE deletes the file groups;
//! * every transaction that touched a DLFM commits through **presumed-abort
//!   two-phase commit** with a forced coordinator commit record and
//!   synchronous phase-2 commit calls (the paper's hard-won requirement,
//!   §4);
//! * transaction ids and recovery ids are **monotonically increasing**, the
//!   property the DLFM metadata design depends on (§3.2–3.3);
//! * statement errors after a partial datalink operation are undone with
//!   `in_backout` requests, host savepoints included (§3.2);
//! * the **Backup / Restore / Reconcile** utilities coordinate host data
//!   with file data (§3.4), and the indoubt resolver daemon cleans up after
//!   crashes (§3.3).

#![warn(missing_docs)]

pub mod coordlog;
pub mod engine;
pub mod error;
pub mod load;
pub mod shard;
pub mod url;
pub mod utilities;

pub use coordlog::{CoordLog, CoordRecord};
pub use engine::{
    register_inproc, DatalinkSpec, DlColumn, HostConfig, HostDb, HostMetrics, HostSavepoint,
    HostSession,
};
pub use error::{HostError, HostResult};
pub use load::{LoadReport, LoadRow};
pub use shard::{route_key, Routed, ShardError, ShardMap};
pub use url::DatalinkUrl;
pub use utilities::{HostBackup, ReconcileOutcome};
