//! DATALINK URL handling.
//!
//! The value of a datalink column is a URL naming a file server and a path
//! on it (paper §1): `dlfs://<server>/<path>`. The datalink engine parses
//! these to route link/unlink requests to the right DLFM.

use std::fmt;

/// A parsed datalink URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DatalinkUrl {
    /// File-server name (which DLFM manages the file).
    pub server: String,
    /// Absolute path on that server.
    pub path: String,
}

/// URL scheme used by this reproduction.
pub const SCHEME: &str = "dlfs://";

/// Errors parsing a datalink value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlError(pub String);

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid datalink URL: {}", self.0)
    }
}

impl std::error::Error for UrlError {}

impl DatalinkUrl {
    /// Parse `dlfs://server/path`.
    pub fn parse(url: &str) -> Result<DatalinkUrl, UrlError> {
        let rest = url
            .strip_prefix(SCHEME)
            .ok_or_else(|| UrlError(format!("{url}: expected {SCHEME} scheme")))?;
        let slash = rest.find('/').ok_or_else(|| UrlError(format!("{url}: missing path")))?;
        let (server, path) = rest.split_at(slash);
        if server.is_empty() {
            return Err(UrlError(format!("{url}: empty server name")));
        }
        if path.len() < 2 {
            return Err(UrlError(format!("{url}: empty path")));
        }
        Ok(DatalinkUrl { server: server.to_string(), path: path.to_string() })
    }

    /// Render back to URL form.
    pub fn to_url(&self) -> String {
        format!("{SCHEME}{}{}", self.server, self.path)
    }
}

impl fmt::Display for DatalinkUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_url())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let u = DatalinkUrl::parse("dlfs://fs1/video/ads/q3.mpg").unwrap();
        assert_eq!(u.server, "fs1");
        assert_eq!(u.path, "/video/ads/q3.mpg");
        assert_eq!(u.to_url(), "dlfs://fs1/video/ads/q3.mpg");
    }

    #[test]
    fn parse_errors() {
        assert!(DatalinkUrl::parse("http://x/y").is_err());
        assert!(DatalinkUrl::parse("dlfs://noslash").is_err());
        assert!(DatalinkUrl::parse("dlfs:///path").is_err());
        assert!(DatalinkUrl::parse("dlfs://srv/").is_err());
    }
}
