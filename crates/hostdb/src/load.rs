//! The Load utility (paper §4).
//!
//! "Load and reconcile utilities tend to run for a long time and involve
//! large number of link/unlink operations. Like any other long running
//! transactions, there is potential for running out of system resources
//! such as log file or lock table entry. Since very long running
//! transactions are always triggered by database utilities that can be
//! broken into pieces (undo of completed piece is not needed in case of the
//! utility failure), we put intelligence in DLFM to recognize such
//! transactions and to do local commit after finishing processing of each
//! piece."
//!
//! The host-side half of that story: `load` bulk-populates a table with
//! datalink rows, committing every `piece_size` rows in its own host
//! transaction (each a full two-phase commit). A failure mid-load keeps
//! the completed pieces — the utility is restartable, not atomic, by
//! design. The DLFM side additionally chunks *within* each piece (see
//! `dlfm::config::DlfmConfig::chunk_commit_every`).

use minidb::Value;

use crate::engine::HostSession;
use crate::error::{HostError, HostResult};

/// One row of a bulk load: values for the target columns.
pub type LoadRow = Vec<Value>;

/// Outcome of a [`HostSession::load`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Rows successfully loaded (and committed).
    pub rows_loaded: usize,
    /// Host transactions (pieces) committed.
    pub pieces_committed: usize,
    /// Index of the first failed row, if the load stopped early.
    pub failed_at: Option<usize>,
}

impl HostSession {
    /// Bulk-load `rows` into `table (columns...)`, committing every
    /// `piece_size` rows. Returns how far it got; on a row failure the
    /// current piece is rolled back and the report carries the failing
    /// index (completed pieces stay committed — the utility semantics the
    /// paper relies on).
    pub fn load(
        &mut self,
        table: &str,
        columns: &[&str],
        rows: &[LoadRow],
        piece_size: usize,
    ) -> HostResult<LoadReport> {
        if self.xid().is_some() {
            return Err(HostError::Usage("load must run outside a transaction".into()));
        }
        let piece_size = piece_size.max(1);
        let sql = format!(
            "INSERT INTO {table} ({}) VALUES ({})",
            columns.join(", "),
            vec!["?"; columns.len()].join(", ")
        );
        let mut report = LoadReport { rows_loaded: 0, pieces_committed: 0, failed_at: None };
        for (piece_idx, piece) in rows.chunks(piece_size).enumerate() {
            self.begin()?;
            let mut failed = None;
            for (offset, row) in piece.iter().enumerate() {
                if let Err(e) = self.exec_params(&sql, row) {
                    failed = Some((piece_idx * piece_size + offset, e));
                    break;
                }
            }
            match failed {
                None => {
                    self.commit()?;
                    report.rows_loaded += piece.len();
                    report.pieces_committed += 1;
                }
                Some((index, _err)) => {
                    self.rollback();
                    report.failed_at = Some(index);
                    return Ok(report);
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DatalinkSpec, HostConfig, HostDb};
    use dlfm::{AccessControl, DlfmConfig, DlfmServer};
    use std::sync::Arc;

    fn rig() -> (Arc<filesys::FileSystem>, DlfmServer, HostDb) {
        let fs = Arc::new(filesys::FileSystem::new());
        let dlfm = DlfmServer::start(
            DlfmConfig::for_tests(),
            fs.clone(),
            Arc::new(archive::ArchiveServer::new()),
        );
        let host = HostDb::new(HostConfig::for_tests());
        host.attach_dlfm("fs1", dlfm.connector());
        (fs, dlfm, host)
    }

    fn table(host: &HostDb) -> crate::engine::HostSession {
        let mut s = host.session();
        s.create_table(
            "CREATE TABLE docs (id BIGINT NOT NULL, doc DATALINK)",
            &[DatalinkSpec {
                column: "doc".into(),
                access: AccessControl::Partial,
                recovery: false,
            }],
        )
        .unwrap();
        s
    }

    #[test]
    fn load_commits_in_pieces() {
        let (fs, dlfm, host) = rig();
        let mut s = table(&host);
        let rows: Vec<LoadRow> = (0..25)
            .map(|i| {
                let p = format!("/l/f{i}");
                fs.create(&p, "u", b"x").unwrap();
                vec![Value::Int(i), Value::str(format!("dlfs://fs1{p}"))]
            })
            .collect();
        let report = s.load("docs", &["id", "doc"], &rows, 10).unwrap();
        assert_eq!(report.rows_loaded, 25);
        assert_eq!(report.pieces_committed, 3);
        assert_eq!(report.failed_at, None);
        assert_eq!(s.query_int("SELECT COUNT(*) FROM docs", &[]).unwrap(), 25);
        let mut dl = minidb::Session::new(dlfm.db());
        assert_eq!(
            dl.query_int("SELECT COUNT(*) FROM dfm_file WHERE lnk_state = 1", &[]).unwrap(),
            25
        );
    }

    #[test]
    fn failure_mid_piece_keeps_completed_pieces() {
        let (fs, dlfm, host) = rig();
        let mut s = table(&host);
        let mut rows: Vec<LoadRow> = (0..10)
            .map(|i| {
                let p = format!("/l/f{i}");
                fs.create(&p, "u", b"x").unwrap();
                vec![Value::Int(i), Value::str(format!("dlfs://fs1{p}"))]
            })
            .collect();
        // Row 7 references a file that does not exist -> piece 2 fails.
        rows[7][1] = Value::str("dlfs://fs1/l/missing");
        let report = s.load("docs", &["id", "doc"], &rows, 5).unwrap();
        assert_eq!(report.rows_loaded, 5, "first piece committed");
        assert_eq!(report.pieces_committed, 1);
        assert_eq!(report.failed_at, Some(7));
        assert_eq!(s.query_int("SELECT COUNT(*) FROM docs", &[]).unwrap(), 5);
        // The failed piece left nothing behind on the DLFM either.
        let mut dl = minidb::Session::new(dlfm.db());
        assert_eq!(
            dl.query_int("SELECT COUNT(*) FROM dfm_file WHERE lnk_state = 1", &[]).unwrap(),
            5
        );
        assert_eq!(dl.query_int("SELECT COUNT(*) FROM dfm_xact", &[]).unwrap(), 0);
    }

    #[test]
    fn load_rejected_inside_transaction() {
        let (_fs, _dlfm, host) = rig();
        let mut s = table(&host);
        s.begin().unwrap();
        let e = s.load("docs", &["id", "doc"], &[], 10).unwrap_err();
        assert!(matches!(e, HostError::Usage(_)));
        s.rollback();
    }
}
