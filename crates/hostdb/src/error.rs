//! Host-side error model.

use std::fmt;

use crate::url::UrlError;
use dlfm::DlfmError;
use minidb::DbError;

/// Errors surfaced to host-database applications.
#[derive(Debug, Clone, PartialEq)]
pub enum HostError {
    /// Local (host) database error.
    Db(DbError),
    /// Error reported by a DLFM. Severe (retryable-class) DLFM errors force
    /// a full-transaction rollback on the host (paper §3.2); when that has
    /// happened `txn_rolled_back` is true.
    Dlfm {
        /// The DLFM error.
        error: DlfmError,
        /// Whether the host transaction was rolled back as a result.
        txn_rolled_back: bool,
    },
    /// RPC failure talking to a DLFM.
    Rpc(String),
    /// Malformed datalink URL.
    Url(UrlError),
    /// API misuse (e.g. commit without a transaction).
    Usage(String),
    /// Two-phase commit could not complete (a participant voted no).
    PrepareFailed {
        /// Server that refused.
        server: String,
        /// Its reason.
        reason: String,
    },
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::Db(e) => write!(f, "host database error: {e}"),
            HostError::Dlfm { error, txn_rolled_back } => {
                write!(f, "DLFM error (txn rolled back: {txn_rolled_back}): {error}")
            }
            HostError::Rpc(m) => write!(f, "rpc error: {m}"),
            HostError::Url(e) => write!(f, "{e}"),
            HostError::Usage(m) => write!(f, "usage error: {m}"),
            HostError::PrepareFailed { server, reason } => {
                write!(f, "prepare failed on {server}: {reason}")
            }
        }
    }
}

impl std::error::Error for HostError {}

impl From<DbError> for HostError {
    fn from(e: DbError) -> Self {
        HostError::Db(e)
    }
}

impl From<UrlError> for HostError {
    fn from(e: UrlError) -> Self {
        HostError::Url(e)
    }
}

impl From<dlrpc::RpcError> for HostError {
    fn from(e: dlrpc::RpcError) -> Self {
        HostError::Rpc(e.to_string())
    }
}

/// Result alias for host operations.
pub type HostResult<T> = Result<T, HostError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: HostError = DbError::NotFound("t".into()).into();
        assert!(matches!(e, HostError::Db(_)));
        let e: HostError = UrlError("bad".into()).into();
        assert!(matches!(e, HostError::Url(_)));
        let e: HostError = dlrpc::RpcError::Disconnected.into();
        assert!(matches!(e, HostError::Rpc(_)));
    }
}
