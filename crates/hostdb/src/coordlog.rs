//! The two-phase-commit coordinator log.
//!
//! Presumed abort (paper §3.3, reference 8): the coordinator force-writes a
//! commit record *after* all participants prepared and *before* telling
//! anyone to commit. On restart, transactions with a commit record but no
//! end record are re-driven to commit; prepared participant transactions
//! with no commit record are aborted.

use parking_lot::Mutex;

/// One coordinator log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordRecord {
    /// Decision record: this transaction commits on the listed servers.
    Commit {
        /// Host transaction id.
        xid: i64,
        /// DLFM servers that prepared.
        servers: Vec<String>,
    },
    /// All participants acknowledged phase 2.
    End {
        /// Host transaction id.
        xid: i64,
    },
}

#[derive(Default)]
struct Inner {
    records: Vec<CoordRecord>,
    durable: usize,
}

/// The coordinator log with an explicit durability watermark, so a host
/// crash can lose the volatile tail.
#[derive(Default)]
pub struct CoordLog {
    inner: Mutex<Inner>,
}

impl CoordLog {
    /// New empty log.
    pub fn new() -> CoordLog {
        CoordLog::default()
    }

    /// Append a record (volatile until forced).
    pub fn append(&self, rec: CoordRecord) {
        self.inner.lock().records.push(rec);
    }

    /// Append and force in one step (used for the commit decision).
    pub fn append_forced(&self, rec: CoordRecord) {
        let mut inner = self.inner.lock();
        inner.records.push(rec);
        inner.durable = inner.records.len();
    }

    /// Make all appended records durable.
    pub fn force(&self) {
        let mut inner = self.inner.lock();
        inner.durable = inner.records.len();
    }

    /// Crash: discard the volatile tail. Returns records lost.
    pub fn crash(&self) -> usize {
        let mut inner = self.inner.lock();
        let lost = inner.records.len() - inner.durable;
        let durable = inner.durable;
        inner.records.truncate(durable);
        lost
    }

    /// Transactions with a durable commit decision but no end record —
    /// phase 2 must be re-driven for these after a restart.
    pub fn unfinished_commits(&self) -> Vec<(i64, Vec<String>)> {
        let inner = self.inner.lock();
        let mut open: Vec<(i64, Vec<String>)> = Vec::new();
        for rec in &inner.records {
            match rec {
                CoordRecord::Commit { xid, servers } => {
                    open.push((*xid, servers.clone()));
                }
                CoordRecord::End { xid } => {
                    open.retain(|(x, _)| x != xid);
                }
            }
        }
        open
    }

    /// Was a commit decision durably recorded for `xid`?
    pub fn committed(&self, xid: i64) -> bool {
        self.inner
            .lock()
            .records
            .iter()
            .any(|r| matches!(r, CoordRecord::Commit { xid: x, .. } if *x == xid))
    }

    /// Total records retained (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfinished_commits_tracks_ends() {
        let log = CoordLog::new();
        log.append_forced(CoordRecord::Commit { xid: 1, servers: vec!["fs1".into()] });
        log.append_forced(CoordRecord::Commit { xid: 2, servers: vec!["fs2".into()] });
        log.append(CoordRecord::End { xid: 1 });
        let open = log.unfinished_commits();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].0, 2);
    }

    #[test]
    fn crash_loses_unforced_tail() {
        let log = CoordLog::new();
        log.append_forced(CoordRecord::Commit { xid: 1, servers: vec![] });
        log.append(CoordRecord::End { xid: 1 });
        let lost = log.crash();
        assert_eq!(lost, 1);
        // The commit decision survived; the end record did not — phase 2
        // re-drives transaction 1.
        assert_eq!(log.unfinished_commits(), vec![(1, vec![])]);
    }

    #[test]
    fn committed_lookup() {
        let log = CoordLog::new();
        assert!(!log.committed(5));
        log.append_forced(CoordRecord::Commit { xid: 5, servers: vec![] });
        assert!(log.committed(5));
    }
}
