//! The two-phase-commit coordinator log.
//!
//! Presumed abort (paper §3.3, reference 8): the coordinator force-writes a
//! commit record *after* all participants prepared and *before* telling
//! anyone to commit. On restart, transactions with a commit record but no
//! end record are re-driven to commit; prepared participant transactions
//! with no commit record are aborted.
//!
//! Like the minidb WAL, forces go through a simulated single-force-at-a-time
//! device (`force_latency`) and group commit batches concurrent commit
//! decisions under one leader force (see `minidb::wal` for the protocol).
//! Crash safety mirrors the WAL too: a crash truncates the volatile tail,
//! after which sequence numbers are reused, so [`CoordLog::append`] returns
//! an [`Appended`] receipt carrying the crash epoch (captured under the log
//! lock) and [`CoordLog::force_up_to`] decides durability exactly from the
//! receipt plus the final watermark each closed epoch ended with.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// One coordinator log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordRecord {
    /// Decision record: this transaction commits on the listed servers.
    Commit {
        /// Host transaction id.
        xid: i64,
        /// DLFM servers that prepared.
        servers: Vec<String>,
    },
    /// All participants acknowledged phase 2.
    End {
        /// Host transaction id.
        xid: i64,
    },
}

/// Receipt for one appended record: its sequence number plus the crash
/// epoch the append happened in. Sequence numbers are reused after a
/// crash truncates the tail, so the epoch is what ties the receipt to
/// *this* record rather than a later namesake.
#[derive(Debug, Clone, Copy)]
pub struct Appended {
    /// 1-based sequence number of the record.
    pub seq: usize,
    /// Crash epoch the record was appended in (captured under the log
    /// lock, so it can never be stale with respect to a racing crash).
    epoch: u64,
}

#[derive(Default)]
struct Inner {
    records: Vec<CoordRecord>,
    durable: usize,
    /// Final durable watermark of each closed (crashed) epoch — the exact
    /// survival test for records appended in that epoch.
    epoch_final: std::collections::HashMap<u64, usize>,
}

#[derive(Default)]
struct GroupState {
    leader_active: bool,
}

/// The coordinator log with an explicit durability watermark, so a host
/// crash can lose the volatile tail.
#[derive(Default)]
pub struct CoordLog {
    inner: Mutex<Inner>,
    /// Mirror of `inner.durable` for lock-free waiter checks.
    durable: AtomicUsize,
    /// Bumped on crash so blocked committers never report false durability.
    epoch: AtomicU64,
    force_latency_nanos: AtomicU64,
    group_commit: AtomicBool,
    forces: AtomicU64,
    decisions: AtomicU64,
    batch_hist: obs::Histogram,
    /// The simulated force device: one force in flight at a time.
    device: Mutex<()>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
}

impl CoordLog {
    /// New empty log with group commit on and zero force latency.
    pub fn new() -> CoordLog {
        let log = CoordLog::default();
        log.group_commit.store(true, Ordering::Relaxed);
        log
    }

    /// Simulated per-force latency (commit-decision durability cost).
    pub fn set_force_latency(&self, d: Duration) {
        self.force_latency_nanos.store(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Toggle group commit for coordinator-log forces.
    pub fn set_group_commit(&self, on: bool) {
        self.group_commit.store(on, Ordering::Relaxed);
    }

    /// Append a record (volatile until forced). The returned receipt
    /// carries the 1-based sequence number and the append-time crash
    /// epoch, usable with [`CoordLog::force_up_to`].
    pub fn append(&self, rec: CoordRecord) -> Appended {
        if matches!(rec, CoordRecord::Commit { .. }) {
            self.decisions.fetch_add(1, Ordering::Relaxed);
        }
        let mut inner = self.inner.lock();
        inner.records.push(rec);
        // Epoch captured under the log lock — `crash()` bumps it under the
        // same lock, so the receipt can never carry a post-crash epoch for
        // a pre-crash record.
        Appended { seq: inner.records.len(), epoch: self.epoch.load(Ordering::Acquire) }
    }

    /// Append and force in one step (used for the commit decision).
    /// Returns `false` when a simulated crash destroyed the record.
    pub fn append_forced(&self, rec: CoordRecord) -> bool {
        let rec = self.append(rec);
        self.force_up_to(rec)
    }

    /// Make all appended records durable. Returns `false` when a crash
    /// destroyed part of that tail first (see [`CoordLog::force_up_to`]).
    pub fn force(&self) -> bool {
        // Bind outside the call so the guard drops before forcing —
        // `force_device` re-locks `inner` on this thread.
        let tail = {
            let inner = self.inner.lock();
            Appended { seq: inner.records.len(), epoch: self.epoch.load(Ordering::Acquire) }
        };
        self.force_up_to(tail)
    }

    /// Block until the record behind `rec` is durable: the same
    /// leader/follower group-commit protocol as `minidb::wal`. Returns
    /// `false` if a simulated crash destroyed the record; the verdict is
    /// exact either way (see [`CoordLog::durable_status`]).
    pub fn force_up_to(&self, rec: Appended) -> bool {
        if !self.group_commit.load(Ordering::Relaxed) {
            self.force_device(rec.epoch);
            // Decide on the watermark, not on our own force's outcome:
            // another force may already have covered `rec`.
            return self.durable_status(rec).unwrap_or(false);
        }
        let mut group = self.group.lock();
        loop {
            if let Some(durable) = self.durable_status(rec) {
                return durable;
            }
            if group.leader_active {
                self.group_cv.wait(&mut group);
                continue;
            }
            group.leader_active = true;
            drop(group);
            self.force_device(rec.epoch);
            group = self.group.lock();
            group.leader_active = false;
            self.group_cv.notify_all();
        }
    }

    /// Exact durability status of `rec`: `Some(true)` once durable,
    /// `Some(false)` once a crash provably destroyed it, `None` while
    /// undecided. Same reasoning as `minidb::wal`: the watermark never
    /// rewinds and a record appended in epoch E sits above E's starting
    /// watermark, so covered-while-still-in-E means covered; once E is
    /// over, the watermark E closed with is the precise survival test.
    fn durable_status(&self, rec: Appended) -> Option<bool> {
        if self.durable.load(Ordering::Acquire) >= rec.seq
            && self.epoch.load(Ordering::Acquire) == rec.epoch
        {
            return Some(true);
        }
        if self.epoch.load(Ordering::Acquire) == rec.epoch {
            return None;
        }
        let inner = self.inner.lock();
        Some(inner.epoch_final.get(&rec.epoch).is_some_and(|&d| d >= rec.seq))
    }

    /// One pass over the simulated force device: capture the target, sleep
    /// the device latency, publish durability.
    fn force_device(&self, epoch: u64) -> bool {
        let _device = self.device.lock();
        let target = self.inner.lock().records.len();
        let latency = self.force_latency_nanos.load(Ordering::Relaxed);
        if latency > 0 {
            thread::sleep(Duration::from_nanos(latency));
        }
        let mut inner = self.inner.lock();
        if self.epoch.load(Ordering::Acquire) != epoch {
            return false;
        }
        let target = target.min(inner.records.len());
        let covered = inner.records[inner.durable.min(target)..target]
            .iter()
            .filter(|r| matches!(r, CoordRecord::Commit { .. }))
            .count();
        inner.durable = inner.durable.max(target);
        let durable = inner.durable;
        self.durable.store(durable, Ordering::Release);
        drop(inner);
        self.forces.fetch_add(1, Ordering::Relaxed);
        self.batch_hist.record(covered as u64);
        obs::journal::record(obs::journal::JournalKind::CoordForce, 0, || {
            format!("coordinator log forced to seq {durable} covering {covered} decisions")
        });
        true
    }

    /// Total forces performed.
    pub fn forces_total(&self) -> u64 {
        self.forces.load(Ordering::Relaxed)
    }

    /// Total commit-decision records appended.
    pub fn decisions_total(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }

    /// Histogram of commit decisions made durable per force (batch size).
    pub fn batch_hist(&self) -> &obs::Histogram {
        &self.batch_hist
    }

    /// Crash: discard the volatile tail. Returns records lost. Blocked
    /// committers are woken and observe the epoch bump.
    pub fn crash(&self) -> usize {
        let mut inner = self.inner.lock();
        let lost = inner.records.len() - inner.durable;
        let durable = inner.durable;
        inner.records.truncate(durable);
        // Close the epoch under the log lock, recording the watermark it
        // ended with — the exact survival test for its records.
        let closed = self.epoch.fetch_add(1, Ordering::Release);
        inner.epoch_final.insert(closed, durable);
        drop(inner);
        self.group_cv.notify_all();
        lost
    }

    /// Transactions with a durable commit decision but no end record —
    /// phase 2 must be re-driven for these after a restart.
    pub fn unfinished_commits(&self) -> Vec<(i64, Vec<String>)> {
        let inner = self.inner.lock();
        let mut open: Vec<(i64, Vec<String>)> = Vec::new();
        for rec in &inner.records {
            match rec {
                CoordRecord::Commit { xid, servers } => {
                    open.push((*xid, servers.clone()));
                }
                CoordRecord::End { xid } => {
                    open.retain(|(x, _)| x != xid);
                }
            }
        }
        open
    }

    /// Was a commit decision durably recorded for `xid`?
    pub fn committed(&self, xid: i64) -> bool {
        self.inner
            .lock()
            .records
            .iter()
            .any(|r| matches!(r, CoordRecord::Commit { xid: x, .. } if *x == xid))
    }

    /// Total records retained (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfinished_commits_tracks_ends() {
        let log = CoordLog::new();
        log.append_forced(CoordRecord::Commit { xid: 1, servers: vec!["fs1".into()] });
        log.append_forced(CoordRecord::Commit { xid: 2, servers: vec!["fs2".into()] });
        log.append(CoordRecord::End { xid: 1 });
        let open = log.unfinished_commits();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].0, 2);
    }

    #[test]
    fn crash_loses_unforced_tail() {
        let log = CoordLog::new();
        log.append_forced(CoordRecord::Commit { xid: 1, servers: vec![] });
        log.append(CoordRecord::End { xid: 1 });
        let lost = log.crash();
        assert_eq!(lost, 1);
        // The commit decision survived; the end record did not — phase 2
        // re-drives transaction 1.
        assert_eq!(log.unfinished_commits(), vec![(1, vec![])]);
    }

    #[test]
    fn committed_lookup() {
        let log = CoordLog::new();
        assert!(!log.committed(5));
        log.append_forced(CoordRecord::Commit { xid: 5, servers: vec![] });
        assert!(log.committed(5));
    }

    #[test]
    fn one_force_covers_earlier_appends() {
        let log = CoordLog::new();
        let s1 = log.append(CoordRecord::Commit { xid: 1, servers: vec![] });
        let s2 = log.append(CoordRecord::Commit { xid: 2, servers: vec![] });
        assert!(s1.seq < s2.seq);
        assert!(log.force_up_to(s2));
        assert_eq!(log.forces_total(), 1);
        assert_eq!(log.decisions_total(), 2);
        assert_eq!(log.batch_hist().max(), 2);
        // Already durable: no new force.
        assert!(log.force_up_to(s1));
        assert_eq!(log.forces_total(), 1);
    }

    /// `force()` must not hold the inner lock across the force (it used to
    /// self-deadlock on the very first real force).
    #[test]
    fn explicit_force_makes_the_tail_durable() {
        let log = CoordLog::new();
        log.append(CoordRecord::Commit { xid: 1, servers: vec![] });
        log.append(CoordRecord::End { xid: 1 });
        assert!(log.force());
        assert_eq!(log.forces_total(), 1);
        assert_eq!(log.crash(), 0, "forced tail must survive a crash");
    }

    /// A crash landing between append and force must report the decision
    /// as lost — promptly, and even after reused sequence numbers regrow
    /// past it and become durable.
    #[test]
    fn crash_between_append_and_force_reports_loss() {
        for grouped in [true, false] {
            let log = CoordLog::new();
            log.set_group_commit(grouped);
            let rec = log.append(CoordRecord::Commit { xid: 1, servers: vec![] });
            log.crash();
            let other = log.append(CoordRecord::Commit { xid: 2, servers: vec![] });
            assert!(log.force_up_to(other));
            assert!(!log.force_up_to(rec), "lost decision acknowledged as durable");
        }
    }

    /// The mirror case: a decision that became durable before the crash
    /// must still be acknowledged afterwards.
    #[test]
    fn durable_decision_acked_across_a_crash() {
        for grouped in [true, false] {
            let log = CoordLog::new();
            log.set_group_commit(grouped);
            let rec = log.append(CoordRecord::Commit { xid: 1, servers: vec![] });
            assert!(log.force());
            log.crash();
            assert!(log.force_up_to(rec), "durable decision reported as lost");
        }
    }

    #[test]
    fn concurrent_decisions_batch_under_one_leader() {
        use std::sync::Arc;
        let log = Arc::new(CoordLog::new());
        log.set_force_latency(Duration::from_millis(2));
        let mut handles = Vec::new();
        for t in 0..4i64 {
            let log = log.clone();
            handles.push(thread::spawn(move || {
                for i in 0..5 {
                    assert!(log
                        .append_forced(CoordRecord::Commit { xid: t * 100 + i, servers: vec![] }));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.decisions_total(), 20);
        assert!(
            log.forces_total() < log.decisions_total(),
            "grouped forces ({}) must undercut decisions ({})",
            log.forces_total(),
            log.decisions_total()
        );
    }
}
