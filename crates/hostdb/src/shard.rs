//! Shard map: hash-partitioned placement of link metadata across DLFMs.
//!
//! ROADMAP item 2: instead of the static one-server-per-URL binding, the
//! host can route every link/unlink/probe through a [`ShardMap`] — a hash
//! of the file path's *directory* over a fixed ring of DLFM shards, plus a
//! list of explicit prefix overrides that make placement reconfigurable
//! online (H2O's "placement is metadata" applied to DLFM).
//!
//! ## Routing
//!
//! The routing key of `/video/ads/q3.mpg` is its dirname `/video/ads`:
//! files in one directory always land on one shard, so a directory-local
//! workload (the e1 mix) touches one shard per statement while distinct
//! directories spread across the ring. The hash is a hand-rolled FNV-1a —
//! `std`'s hasher is randomized per process, and two processes (host and
//! a future standby coordinator) must agree on placement.
//!
//! The ring is *fixed* once [`ShardMap::set_shards`] is called: adding a
//! shard to the ring would silently rehash every existing placement.
//! Growing the deployment instead goes through prefix migration: attach
//! the new DLFM, then move chosen prefixes onto it with
//! `HostDb::migrate_prefix` — each migrated prefix becomes an override
//! entry that wins over the ring.
//!
//! ## Epochs and migration
//!
//! Every change to the map bumps a monotonically increasing **epoch**.
//! Transactions pin the epoch current at `begin`; a migration flips the
//! prefix to *migrating* (bumping the epoch), waits until every
//! transaction pinned below the new epoch has finished (they may still be
//! writing through old placements), copies the rows, then marks the
//! prefix owned by the target. While a prefix is migrating, transactions
//! pinned **before** the flip keep routing as if the override did not
//! exist, and transactions pinned **after** it block (bounded) until the
//! copy finishes — so no transaction ever sees half-moved placement.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Stable 64-bit FNV-1a: deterministic across processes and builds, unlike
/// `std::collections::hash_map::DefaultHasher`.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Routing key of a path: its dirname (files of one directory co-locate).
pub fn route_key(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) | None => "/",
        Some(i) => &path[..i],
    }
}

/// One prefix override: placement decided by migration, not the ring.
#[derive(Debug, Clone)]
struct Override {
    /// Path prefix (no trailing slash); covers the whole subtree.
    prefix: String,
    /// Owning shard once settled.
    owner: String,
    /// While migrating: the epoch of the flip. Transactions pinned below
    /// it keep the pre-flip placement; transactions pinned at/above it
    /// wait for the copy to settle.
    migrating_since: Option<u64>,
    /// Pre-flip owner when this migration replaces an earlier override
    /// (`None` when the pre-flip placement was the ring).
    prev_owner: Option<String>,
}

impl Override {
    fn covers(&self, path: &str) -> bool {
        path == self.prefix
            || (path.starts_with(&self.prefix)
                && path.as_bytes().get(self.prefix.len()) == Some(&b'/'))
    }
}

#[derive(Debug, Default)]
struct MapState {
    /// The fixed hash ring. Empty ⇒ sharding disabled (URL server names
    /// route directly, the pre-shard behaviour).
    ring: Vec<String>,
    /// Prefix overrides, longest prefix wins.
    overrides: Vec<Override>,
    /// Monotonically increasing map version; bumped on every change.
    epoch: u64,
    /// In-flight transactions per pinned epoch.
    inflight: BTreeMap<u64, usize>,
}

/// Errors from shard-map operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A route blocked on an in-progress migration past the timeout.
    RouteTimeout {
        /// The path that could not be routed.
        path: String,
    },
    /// Draining pre-migration transactions timed out.
    DrainTimeout {
        /// Transactions still pinned below the migration epoch.
        still_inflight: usize,
    },
    /// The prefix is already being migrated.
    MigrationInProgress {
        /// The contested prefix.
        prefix: String,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::RouteTimeout { path } => {
                write!(f, "routing {path} blocked on a shard migration past the timeout")
            }
            ShardError::DrainTimeout { still_inflight } => write!(
                f,
                "shard migration drain timed out with {still_inflight} transaction(s) \
                 still pinned to the old epoch"
            ),
            ShardError::MigrationInProgress { prefix } => {
                write!(f, "prefix {prefix} is already being migrated")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// A successful route, noting whether it had to wait for a migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routed {
    /// The shard (attached DLFM name) owning the path.
    pub shard: String,
    /// True when the route blocked on an in-progress migration first.
    pub waited: bool,
}

/// Versioned placement map of link metadata over DLFM shards.
///
/// Owned by `HostDb`; see the module docs for the protocol.
#[derive(Default)]
pub struct ShardMap {
    state: Mutex<MapState>,
    /// Woken on every map or inflight change: routers waiting out a
    /// migration and migrations draining old transactions both park here.
    changed: Condvar,
}

impl ShardMap {
    /// A disabled map (no ring, no overrides).
    pub fn new() -> ShardMap {
        ShardMap::default()
    }

    /// Is hash routing active?
    pub fn enabled(&self) -> bool {
        !self.state.lock().ring.is_empty()
    }

    /// Current map epoch.
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// Install the hash ring. The ring is fixed from here on — topology
    /// changes go through prefix migration — so this is meant to be called
    /// once at deployment time, before data is loaded.
    pub fn set_shards(&self, shards: &[String]) {
        let mut st = self.state.lock();
        st.ring = shards.to_vec();
        st.epoch += 1;
        self.changed.notify_all();
    }

    /// The ring (for status pages).
    pub fn shards(&self) -> Vec<String> {
        self.state.lock().ring.clone()
    }

    /// Snapshot of overrides as `(prefix, owner, migrating)` for status.
    pub fn overrides(&self) -> Vec<(String, String, bool)> {
        self.state
            .lock()
            .overrides
            .iter()
            .map(|o| (o.prefix.clone(), o.owner.clone(), o.migrating_since.is_some()))
            .collect()
    }

    /// Register a transaction begin; returns the epoch it pins.
    pub fn begin_txn(&self) -> u64 {
        let mut st = self.state.lock();
        let epoch = st.epoch;
        *st.inflight.entry(epoch).or_insert(0) += 1;
        epoch
    }

    /// Unregister a finished (committed or rolled-back) transaction.
    pub fn end_txn(&self, epoch: u64) {
        let mut st = self.state.lock();
        if let Some(n) = st.inflight.get_mut(&epoch) {
            *n -= 1;
            if *n == 0 {
                st.inflight.remove(&epoch);
            }
        }
        self.changed.notify_all();
    }

    /// In-flight transactions per pinned epoch (for status).
    pub fn inflight(&self) -> Vec<(u64, usize)> {
        self.state.lock().inflight.iter().map(|(e, n)| (*e, *n)).collect()
    }

    /// Route a path for a transaction pinned at `pinned_epoch`. Returns the
    /// owning shard, or blocks (up to `timeout`) while the longest matching
    /// prefix override is mid-migration and the pin postdates the flip.
    /// With an empty ring and no matching override the map is not in
    /// charge: returns `None` and the caller uses the URL's server name.
    pub fn route(
        &self,
        path: &str,
        pinned_epoch: u64,
        timeout: Duration,
    ) -> Result<Option<Routed>, ShardError> {
        let key = route_key(path);
        let deadline = Instant::now() + timeout;
        let mut waited = false;
        let mut st = self.state.lock();
        loop {
            // Longest matching override visible to this transaction wins.
            // A migrating override is invisible to pre-flip transactions
            // unless it replaced an earlier override (then they keep the
            // previous owner).
            let best = st
                .overrides
                .iter()
                .filter(|o| o.covers(key))
                .filter(|o| match o.migrating_since {
                    None => true,
                    Some(flip) => pinned_epoch >= flip || o.prev_owner.is_some(),
                })
                .max_by_key(|o| o.prefix.len());
            match best {
                Some(o) => match o.migrating_since {
                    Some(flip) if pinned_epoch < flip => {
                        let prev =
                            o.prev_owner.clone().expect("filter keeps pre-flip only with prev");
                        return Ok(Some(Routed { shard: prev, waited }));
                    }
                    Some(_) => {
                        // Post-flip transaction: wait out the copy.
                        waited = true;
                        if self.changed.wait_until(&mut st, deadline).timed_out() {
                            return Err(ShardError::RouteTimeout { path: path.to_string() });
                        }
                    }
                    None => return Ok(Some(Routed { shard: o.owner.clone(), waited })),
                },
                None => {
                    if st.ring.is_empty() {
                        return Ok(None);
                    }
                    let idx = (fnv1a(key) % st.ring.len() as u64) as usize;
                    return Ok(Some(Routed { shard: st.ring[idx].clone(), waited }));
                }
            }
        }
    }

    /// Flip `prefix` into the migrating state owned by `to`. Returns the
    /// epoch of the flip: transactions pinned below it must drain before
    /// rows move. Fails if the prefix is already migrating.
    pub fn begin_migration(&self, prefix: &str, to: &str) -> Result<u64, ShardError> {
        let mut st = self.state.lock();
        if st.overrides.iter().any(|o| o.prefix == prefix && o.migrating_since.is_some()) {
            return Err(ShardError::MigrationInProgress { prefix: prefix.to_string() });
        }
        st.epoch += 1;
        let flip = st.epoch;
        let prev_owner = st.overrides.iter().find(|o| o.prefix == prefix).map(|o| o.owner.clone());
        st.overrides.retain(|o| o.prefix != prefix);
        st.overrides.push(Override {
            prefix: prefix.to_string(),
            owner: to.to_string(),
            migrating_since: Some(flip),
            prev_owner,
        });
        self.changed.notify_all();
        Ok(flip)
    }

    /// Wait until every transaction pinned below `epoch` has finished.
    pub fn drain_below(&self, epoch: u64, timeout: Duration) -> Result<(), ShardError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            let still: usize = st.inflight.range(..epoch).map(|(_, n)| *n).sum();
            if still == 0 {
                return Ok(());
            }
            if self.changed.wait_until(&mut st, deadline).timed_out() {
                return Err(ShardError::DrainTimeout { still_inflight: still });
            }
        }
    }

    /// Settle a migration: the prefix is now plainly owned by its target
    /// (set at [`ShardMap::begin_migration`]); blocked routers wake.
    pub fn finish_migration(&self, prefix: &str) {
        let mut st = self.state.lock();
        st.epoch += 1;
        for o in &mut st.overrides {
            if o.prefix == prefix {
                o.migrating_since = None;
            }
        }
        self.changed.notify_all();
    }

    /// Abort a migration: restore the pre-flip placement (the earlier
    /// override's owner, or the ring); blocked routers wake and re-route.
    pub fn abort_migration(&self, prefix: &str) {
        let mut st = self.state.lock();
        st.epoch += 1;
        let prev =
            st.overrides.iter().find(|o| o.prefix == prefix).and_then(|o| o.prev_owner.clone());
        st.overrides.retain(|o| o.prefix != prefix);
        if let Some(owner) = prev {
            st.overrides.push(Override {
                prefix: prefix.to_string(),
                owner,
                migrating_since: None,
                prev_owner: None,
            });
        }
        self.changed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(names: &[&str]) -> ShardMap {
        let m = ShardMap::new();
        m.set_shards(&names.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        m
    }

    #[test]
    fn route_key_is_dirname() {
        assert_eq!(route_key("/a/b/c.mpg"), "/a/b");
        assert_eq!(route_key("/top.mpg"), "/");
        assert_eq!(route_key("nope"), "/");
    }

    #[test]
    fn disabled_map_routes_nothing() {
        let m = ShardMap::new();
        assert!(!m.enabled());
        let r = m.route("/a/b", m.epoch(), Duration::from_secs(1)).unwrap();
        assert_eq!(r, None);
    }

    #[test]
    fn ring_routing_is_deterministic_and_directory_local() {
        let m = ring(&["s0", "s1", "s2"]);
        let e = m.epoch();
        let a = m.route("/dir/one", e, Duration::from_secs(1)).unwrap().unwrap();
        let b = m.route("/dir/two", e, Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(a.shard, b.shard, "same directory must co-locate");
        // Distinct directories spread: at least two shards used over many.
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64 {
            let r = m.route(&format!("/d{i}/f"), e, Duration::from_secs(1)).unwrap().unwrap();
            seen.insert(r.shard);
        }
        assert!(seen.len() >= 2, "64 directories landed on one shard: {seen:?}");
    }

    #[test]
    fn override_wins_and_longest_prefix_applies() {
        let m = ring(&["s0", "s1"]);
        m.begin_migration("/hot", "s9").unwrap();
        m.finish_migration("/hot");
        m.begin_migration("/hot/inner", "s8").unwrap();
        m.finish_migration("/hot/inner");
        let e = m.epoch();
        let t = Duration::from_secs(1);
        assert_eq!(m.route("/hot/f", e, t).unwrap().unwrap().shard, "s9");
        assert_eq!(m.route("/hot/inner/f", e, t).unwrap().unwrap().shard, "s8");
        // "/hotel" must NOT match the "/hot" override (component boundary).
        assert_ne!(m.route("/hotel/f", e, t).unwrap().unwrap().shard, "s9");
    }

    #[test]
    fn migration_blocks_new_epochs_and_passes_old_ones() {
        let m = std::sync::Arc::new(ring(&["s0", "s1"]));
        let before = m.begin_txn();
        let flip = m.begin_migration("/mig", "s1").unwrap();
        assert!(before < flip);
        // Pre-flip transaction routes through the ring, no blocking.
        let r = m.route("/mig/f", before, Duration::from_secs(1)).unwrap().unwrap();
        assert!(!r.waited);
        // Post-flip transaction blocks until the migration settles.
        let after = m.begin_txn();
        let m2 = m.clone();
        let waiter = std::thread::spawn(move || {
            m2.route("/mig/f", after, Duration::from_secs(10)).unwrap().unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "post-flip route should still be parked");
        m.finish_migration("/mig");
        let routed = waiter.join().unwrap();
        assert_eq!(routed.shard, "s1");
        assert!(routed.waited);
    }

    #[test]
    fn drain_waits_for_old_transactions_only() {
        let m = std::sync::Arc::new(ring(&["s0"]));
        let old = m.begin_txn();
        let flip = m.begin_migration("/p", "s0").unwrap();
        let _newer = m.begin_txn(); // pinned at flip epoch; must not block drain
        assert!(matches!(
            m.drain_below(flip, Duration::from_millis(30)),
            Err(ShardError::DrainTimeout { still_inflight: 1 })
        ));
        let m2 = m.clone();
        let h = std::thread::spawn(move || m2.drain_below(flip, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        m.end_txn(old);
        h.join().unwrap().unwrap();
        m.abort_migration("/p");
    }

    #[test]
    fn route_timeout_reports_the_path() {
        let m = ring(&["s0"]);
        m.begin_migration("/stuck", "s0").unwrap();
        let e = m.epoch();
        let err = m.route("/stuck/f", e, Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, ShardError::RouteTimeout { .. }));
    }
}
