//! Leveled event logging to stderr.
//!
//! The level is read once from the `DLFM_LOG` environment variable
//! (`off`, `error`, `warn`, `info`, `debug`; default `warn`) and can be
//! overridden programmatically with [`set_level`]. Lines carry a
//! monotonic timestamp, the level, a target (module path by convention),
//! and — when the thread has a trace context installed — the trace id, so
//! log lines correlate with drained spans:
//!
//! ```text
//! [   12.345ms] WARN dlfm::twopc [trace=1f3a9c…] phase-2 commit attempt 3 failed
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unexpected failures that lose or corrupt work.
    Error = 1,
    /// Anomalies the system recovered from (retries, backoffs, guards).
    Warn = 2,
    /// Lifecycle events (startup, recovery, rebinds).
    Info = 3,
    /// Per-operation chatter for debugging.
    Debug = 4,
}

impl Level {
    /// Stable uppercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

const LEVEL_UNSET: u8 = 0xff;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn level_from_env() -> u8 {
    match std::env::var("DLFM_LOG").ok().as_deref() {
        Some("off") | Some("none") => 0,
        Some("error") => Level::Error as u8,
        Some("info") => Level::Info as u8,
        Some("debug") => Level::Debug as u8,
        // warn is the default: recovered anomalies show, chatter doesn't.
        _ => Level::Warn as u8,
    }
}

fn max_level() -> u8 {
    let lv = MAX_LEVEL.load(Ordering::Relaxed);
    if lv != LEVEL_UNSET {
        return lv;
    }
    let lv = level_from_env();
    MAX_LEVEL.store(lv, Ordering::Relaxed);
    lv
}

/// Override the level (e.g. tests silencing expected warnings). `None`
/// disables logging entirely.
pub fn set_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// Would a message at `level` be emitted?
pub fn enabled(level: Level) -> bool {
    level as u8 <= max_level()
}

fn start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Emit one line (used by the macros; call those instead).
pub fn emit(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let elapsed = start().elapsed();
    let trace = match crate::trace::current_ctx() {
        Some(ctx) => format!(" [trace={:016x}]", ctx.trace_id),
        None => String::new(),
    };
    // One write_all so concurrent threads don't interleave mid-line.
    use std::io::Write;
    let line = format!(
        "[{:>10.3}ms] {:5} {}{} {}\n",
        elapsed.as_secs_f64() * 1e3,
        level.as_str(),
        target,
        trace,
        args
    );
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Log at an explicit [`Level`]: `log!(Level::Warn, "target", "fmt {}", x)`.
#[macro_export]
macro_rules! log {
    ($level:expr, $target:expr, $($arg:tt)+) => {
        if $crate::logging::enabled($level) {
            $crate::logging::emit($level, $target, format_args!($($arg)+));
        }
    };
}

/// Log an unexpected failure.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => {
        $crate::log!($crate::logging::Level::Error, $target, $($arg)+)
    };
}

/// Log a recovered anomaly.
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => {
        $crate::log!($crate::logging::Level::Warn, $target, $($arg)+)
    };
}

/// Log a lifecycle event.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => {
        $crate::log!($crate::logging::Level::Info, $target, $($arg)+)
    };
}

/// Log per-operation chatter.
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => {
        $crate::log!($crate::logging::Level::Debug, $target, $($arg)+)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn set_level_filters() {
        set_level(Some(Level::Error));
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Warn));
        set_level(Some(Level::Debug));
        assert!(enabled(Level::Debug));
        set_level(None);
        assert!(!enabled(Level::Error));
        // Restore the env-derived default for other tests.
        MAX_LEVEL.store(LEVEL_UNSET, Ordering::Relaxed);
    }

    #[test]
    fn macros_compile_and_run() {
        set_level(Some(Level::Debug));
        crate::error!("obs::test", "error {}", 1);
        crate::warn!("obs::test", "warn {}", 2);
        crate::info!("obs::test", "info {}", 3);
        crate::debug!("obs::test", "debug {}", 4);
        MAX_LEVEL.store(LEVEL_UNSET, Ordering::Relaxed);
    }
}
