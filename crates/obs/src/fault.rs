//! Deterministic, seeded fault injection.
//!
//! Components thread **named fault points** through their error paths by
//! calling [`fire`] with a stable point name (e.g. `"minidb.wal.append"`,
//! `"rpc.call.drop"`, `"dlfm.phase2.deadlock"`). When no plan is installed
//! the check is a single relaxed atomic load — safe to leave in hot paths.
//!
//! Tests install a [`Trigger`] schedule per point with [`install`] (or the
//! RAII [`install_guarded`]). Probabilistic triggers draw from a per-point
//! xorshift generator seeded from `seed ^ hash(point name)`, so every
//! failure sequence is replayable from its seed alone: same seed, same
//! plan, same sequence of [`fire`] calls → identical faults.
//!
//! The registry is process-global (faults cross crate boundaries exactly
//! like real infrastructure failures do), so tests that install plans must
//! serialize with each other and clean up with [`clear`] / the guard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// When an armed fault point actually fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on exactly the `n`-th hit (1-based), never again.
    Nth(u64),
    /// Fire on the first `n` hits, then go quiet.
    Times(u64),
    /// Fire on every `n`-th hit (the `n`-th, `2n`-th, ...).
    EveryNth(u64),
    /// Fire each hit independently with this probability, drawn from the
    /// point's seeded generator.
    Probability(f64),
}

struct PointState {
    trigger: Trigger,
    rng: u64,
    hits: u64,
    fires: u64,
}

/// Process-wide fast-path switch: exactly one relaxed load on the disabled
/// path, so fault points cost nothing in production builds.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<HashMap<String, PointState>>> = Mutex::new(None);

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// splitmix64 finalizer: spreads every input bit across the word so that
/// adjacent seeds (and `|1` zero-avoidance below) still give distinct
/// streams.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// xorshift64* step; the high bits become a uniform f64 in [0, 1).
fn next_unit(rng: &mut u64) -> f64 {
    let mut x = *rng;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *rng = x;
    let draw = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
    draw as f64 / (1u64 << 53) as f64
}

/// Install a fault plan: each `(point, trigger)` arms one named fault
/// point. Replaces any previous plan. `seed` makes probabilistic triggers
/// replayable — the same seed and call sequence produce the same faults.
pub fn install(seed: u64, specs: &[(&str, Trigger)]) {
    let mut points = HashMap::new();
    for (name, trigger) in specs {
        points.insert(
            name.to_string(),
            PointState {
                trigger: *trigger,
                // Never-zero per-point stream, decorrelated by point name.
                rng: mix(seed ^ fnv1a(name)) | 1,
                hits: 0,
                fires: 0,
            },
        );
    }
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = Some(points);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Disarm everything and drop the plan. Idempotent.
pub fn clear() {
    ACTIVE.store(false, Ordering::SeqCst);
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// RAII plan handle: [`clear`]s on drop, so a panicking test cannot leak
/// its faults into the next one.
pub struct FaultGuard(());

impl Drop for FaultGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// [`install`] returning a guard that clears the plan when dropped.
#[must_use = "the plan is cleared when the guard drops"]
pub fn install_guarded(seed: u64, specs: &[(&str, Trigger)]) -> FaultGuard {
    install(seed, specs);
    FaultGuard(())
}

/// Should this named fault point fail now? One relaxed atomic load when no
/// plan is installed; unarmed points never fire.
#[inline]
pub fn fire(point: &str) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    fire_slow(point)
}

#[cold]
fn fire_slow(point: &str) -> bool {
    let mut guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let Some(points) = guard.as_mut() else { return false };
    let Some(st) = points.get_mut(point) else { return false };
    st.hits += 1;
    let fired = match st.trigger {
        Trigger::Always => true,
        Trigger::Nth(n) => st.hits == n,
        Trigger::Times(n) => st.hits <= n,
        Trigger::EveryNth(n) => n > 0 && st.hits.is_multiple_of(n),
        Trigger::Probability(p) => next_unit(&mut st.rng) < p,
    };
    if fired {
        st.fires += 1;
    }
    drop(guard); // release the plan lock before journaling (it may dump)
    if fired {
        crate::journal::on_fault_fired(point);
    }
    fired
}

/// Times an armed point has been evaluated under the current plan.
pub fn hits(point: &str) -> u64 {
    let guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().and_then(|p| p.get(point)).map_or(0, |s| s.hits)
}

/// Times an armed point has fired under the current plan.
pub fn fires(point: &str) -> u64 {
    let guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().and_then(|p| p.get(point)).map_or(0, |s| s.fires)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; unit tests serialize on this.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_points_never_fire() {
        let _s = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        assert!(!fire("anything"));
        let _g = install_guarded(1, &[("armed", Trigger::Always)]);
        assert!(!fire("unarmed"), "points outside the plan stay quiet");
        assert!(fire("armed"));
    }

    #[test]
    fn counting_triggers() {
        let _s = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let _g = install_guarded(
            7,
            &[
                ("nth", Trigger::Nth(2)),
                ("times", Trigger::Times(2)),
                ("every", Trigger::EveryNth(3)),
            ],
        );
        let pattern: Vec<bool> = (0..6).map(|_| fire("nth")).collect();
        assert_eq!(pattern, [false, true, false, false, false, false]);
        let pattern: Vec<bool> = (0..4).map(|_| fire("times")).collect();
        assert_eq!(pattern, [true, true, false, false]);
        let pattern: Vec<bool> = (0..7).map(|_| fire("every")).collect();
        assert_eq!(pattern, [false, false, true, false, false, true, false]);
        assert_eq!(hits("nth"), 6);
        assert_eq!(fires("nth"), 1);
        assert_eq!(fires("times"), 2);
        assert_eq!(fires("every"), 2);
    }

    #[test]
    fn probability_is_replayable_from_the_seed() {
        let _s = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let run = |seed: u64| -> Vec<bool> {
            let _g = install_guarded(seed, &[("p", Trigger::Probability(0.4))]);
            (0..64).map(|_| fire("p")).collect()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must reproduce the same fault sequence");
        let c = run(43);
        assert_ne!(a, c, "different seeds should diverge");
        let rate = a.iter().filter(|f| **f).count();
        assert!((10..=40).contains(&rate), "p=0.4 over 64 draws fired {rate} times");
    }

    #[test]
    fn probability_streams_are_decorrelated_by_point_name() {
        let _s = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let _g = install_guarded(
            9,
            &[("a", Trigger::Probability(0.5)), ("b", Trigger::Probability(0.5))],
        );
        let a: Vec<bool> = (0..64).map(|_| fire("a")).collect();
        let b: Vec<bool> = (0..64).map(|_| fire("b")).collect();
        assert_ne!(a, b, "two points with one seed must not share a stream");
    }

    #[test]
    fn clear_disarms_and_guard_clears_on_drop() {
        let _s = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        install(3, &[("x", Trigger::Always)]);
        assert!(fire("x"));
        clear();
        assert!(!fire("x"));
        {
            let _g = install_guarded(3, &[("x", Trigger::Always)]);
            assert!(fire("x"));
        }
        assert!(!fire("x"), "guard drop must clear the plan");
    }
}
