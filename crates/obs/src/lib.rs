//! # obs — observability substrate
//!
//! The sensory system of the DataLinks reproduction, std-only:
//!
//! * [`trace`] — `TraceCtx { trace_id, span_id }` allocated at the host
//!   statement boundary and carried across the RPC fabric into DLFM child
//!   agents and down into minidb, plus a bounded ring buffer of span
//!   events that tests and bench binaries can drain and assert on;
//! * [`hist`] — fixed-bucket log-scale latency histograms
//!   (HdrHistogram-style power-of-two sub-buckets, `Relaxed` atomics,
//!   mergeable) for per-operation latency, lock waits, and WAL forces;
//! * [`registry`] — a metrics registry rendering counters, gauges, and
//!   histograms in the Prometheus text exposition format;
//! * [`log`](crate::logging) — leveled event logging to stderr
//!   (`error!`/`warn!`/`info!`/`debug!`), filterable with the `DLFM_LOG`
//!   environment variable, prefixed with the current trace id;
//! * [`fault`] — deterministic, seeded fault injection: named fault
//!   points threaded through WAL, storage, RPC, filesys, and 2PC code,
//!   zero-cost when disabled, replayable from a seed when armed;
//! * [`journal`] — the flight recorder: a bounded ring of structured
//!   events (lock waits, deadlock victims, 2PC transitions, WAL forces,
//!   admission rejects, fault fires) that dumps on panic, fault fire, or
//!   `DLFM_JOURNAL_DUMP`; one relaxed atomic load when disarmed;
//! * [`export`] — Chrome-trace/Perfetto JSON export over the span ring
//!   and the journal, plus the minimal JSON checker CI validates it with;
//! * [`watch`] — continuous telemetry: a background sampler over every
//!   layer's metrics snapshot, per-interval rates/deltas, declarative
//!   health rules (threshold / rate / stall / quantile), and
//!   self-contained incident bundles written on breach.
//!
//! The paper's lessons (§3.2.1, §4) were found in production telemetry;
//! this crate is what lets the reproduction see the same pathologies —
//! deadlock storms, escalation collapse, phase-2 retries — directly.

#![warn(missing_docs)]

pub mod export;
pub mod fault;
pub mod hist;
pub mod journal;
pub mod logging;
pub mod registry;
pub mod trace;
pub mod watch;

pub use export::{
    export_chrome_trace, export_span_dump, json_is_well_formed, merge_chrome_trace,
    parse_span_dump, span_dump, ProcessTrace, RemoteSpan,
};
pub use fault::{FaultGuard, Trigger};
pub use hist::{Histogram, Report};
pub use journal::{JournalEvent, JournalKind};
pub use registry::Registry;
pub use trace::{
    current_ctx, drain_spans, set_current_ctx, span, span_root, Layer, Outcome, SpanEvent,
    SpanGuard, TraceCtx,
};
pub use watch::{
    render_process_metrics, render_watch_metrics, Cmp, Rule, RuleKind, WatchConfig, Watchdog,
    WatchdogHandle,
};

use std::sync::atomic::{AtomicU64, Ordering};

/// A 64-bit draw from OS-seeded process entropy (`RandomState`'s keys are
/// randomized per construction). Used for trace/span ids; not crypto.
pub(crate) fn entropy() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let state = std::collections::hash_map::RandomState::new();
    let mut hasher = state.build_hasher();
    hasher.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
    hasher.finish() | 1 // never zero
}
