//! Fixed-bucket log-scale histograms (HdrHistogram-style).
//!
//! Values are bucketed by power of two with [`SUB_BUCKETS`] linear
//! sub-buckets per octave, bounding the relative quantile error at
//! `1/SUB_BUCKETS` (6.25%). All mutation is `Relaxed` atomic increments,
//! so one histogram can be shared across worker threads with no locking,
//! and shards can be [`merge`](Histogram::merge)d.
//!
//! The unit is up to the call site; the workspace records microseconds.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of linear sub-buckets per power-of-two octave.
pub const SUB_BUCKET_BITS: u32 = 4;

/// Linear sub-buckets per octave; also the size of the exact range
/// `0..SUB_BUCKETS` at the bottom of the histogram.
pub const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// Total bucket count covering the full `u64` range:
/// `SUB_BUCKETS` exact low buckets plus `(64 - SUB_BUCKET_BITS)` octaves.
pub const NUM_BUCKETS: usize = ((64 - SUB_BUCKET_BITS as usize) + 1) << SUB_BUCKET_BITS as usize;

/// Bucket index for a value.
fn index_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BUCKET_BITS + 1) as u64;
        let sub = (v >> (msb - SUB_BUCKET_BITS)) & (SUB_BUCKETS - 1);
        ((octave << SUB_BUCKET_BITS) + sub) as usize
    }
}

/// Lowest value mapping to bucket `idx` (the quantile estimate reported
/// for any value recorded in that bucket).
pub fn bucket_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        idx
    } else {
        let octave = idx >> SUB_BUCKET_BITS;
        let sub = idx & (SUB_BUCKETS - 1);
        (SUB_BUCKETS + sub) << (octave - 1)
    }
}

/// One-pass percentile summary (see [`Histogram::report`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Report {
    /// Recorded values.
    pub count: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

/// A mergeable, shardable log-scale histogram.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        // A boxed array avoids blowing the stack (NUM_BUCKETS ≈ 1k words).
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets = buckets.into_boxed_slice().try_into().ok().unwrap();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.buckets[index_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in microseconds.
    pub fn record_micros(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Recorded values so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact), 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Is the histogram empty?
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Estimate of the `p`-th percentile (0 < p <= 100): the lower bound
    /// of the bucket holding that rank. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_low(idx);
            }
        }
        self.max()
    }

    /// p50/p95/p99/max in one pass over the buckets.
    pub fn report(&self) -> Report {
        let n = self.count();
        if n == 0 {
            return Report::default();
        }
        let ranks = [
            (0.50f64, 0usize), // (quantile, slot in `out`)
            (0.95, 1),
            (0.99, 2),
        ];
        let mut out = [0u64; 3];
        let mut next = 0usize;
        let mut cumulative = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            while next < ranks.len() {
                let rank = ((ranks[next].0 * n as f64).ceil() as u64).max(1);
                if cumulative < rank {
                    break;
                }
                out[ranks[next].1] = bucket_low(idx);
                next += 1;
            }
            if next == ranks.len() {
                break;
            }
        }
        Report { count: n, p50: out[0], p95: out[1], p99: out[2], max: self.max() }
    }

    /// Add all of `other`'s recorded values into `self`.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = theirs.load(Ordering::Relaxed);
            if v > 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Cumulative count of values recorded at or below `bound`
    /// (approximate at bucket granularity; used for Prometheus `le`
    /// buckets).
    pub fn count_at_or_below(&self, bound: u64) -> u64 {
        let last = index_of(bound);
        let mut cumulative = 0u64;
        for b in &self.buckets[..=last] {
            cumulative += b.load(Ordering::Relaxed);
        }
        cumulative
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Clone for Histogram {
    /// Deep copy of the current (racy-read, like any snapshot) contents.
    fn clone(&self) -> Histogram {
        let h = Histogram::new();
        h.merge(self);
        h
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let r = self.report();
        write!(
            f,
            "Histogram {{ count: {}, p50: {}, p95: {}, p99: {}, max: {} }}",
            r.count, r.p50, r.p95, r.p99, r.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_are_exact() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_low(index_of(v)), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_contiguous_and_monotonic() {
        // Every value maps into a bucket whose range contains it, and
        // bucket indexes never decrease as values grow.
        let mut values: Vec<u64> =
            (0..60).flat_map(|shift| [0u64, 1, 7].map(|off| (1u64 << shift) + off)).collect();
        values.sort_unstable();
        let mut prev_idx = 0usize;
        for v in values {
            let idx = index_of(v);
            assert!(idx >= prev_idx, "index must be monotonic in the value ({v})");
            prev_idx = idx;
            let low = bucket_low(idx);
            assert!(low <= v, "bucket low {low} must be <= value {v}");
            // The next bucket's low bound must be above the value.
            assert!(
                idx + 1 >= NUM_BUCKETS || bucket_low(idx + 1) > v,
                "value {v} must be below the next bucket's low bound"
            );
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = Histogram::new();
        for v in [100u64, 1_000, 10_000, 1_000_000, 123_456_789] {
            let est = bucket_low(index_of(v));
            let err = (v - est) as f64 / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "error {err} too big for {v}");
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 123_456_789);
    }

    #[test]
    fn percentiles_of_uniform_range() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let r = h.report();
        assert_eq!(r.count, 1000);
        // Bucketed estimates: within one sub-bucket (6.25%) below truth.
        for (est, truth) in [(r.p50, 500u64), (r.p95, 950), (r.p99, 990)] {
            assert!(est <= truth, "estimate {est} must not exceed {truth}");
            assert!(
                (truth - est) as f64 <= truth as f64 / SUB_BUCKETS as f64 + 1.0,
                "estimate {est} too far below {truth}"
            );
        }
        assert_eq!(r.max, 1000);
        assert_eq!(h.percentile(50.0), r.p50);
        assert_eq!(h.percentile(100.0), bucket_low(index_of(1000)));
    }

    #[test]
    fn quantiles_track_exact_sorted_percentiles() {
        // Cross-check the bucketed estimator against ground truth: sort
        // the raw values and take exact rank statistics. A deterministic
        // LCG spreads values over ~6 decades with a heavy skew, the shape
        // latency distributions actually have. The estimator reports the
        // lower bucket bound, so it may sit below truth by at most one
        // sub-bucket (1/16 = 6.25% relative).
        let h = Histogram::new();
        let mut values = Vec::new();
        let mut x = 0x2545f4914f6cdd1du64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Skew: mostly small, a long tail up to ~10^7.
            let magnitude = 1u64 << ((x >> 59) % 24);
            let v = 1 + (x >> 33) % (magnitude * 100);
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        for q in [1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9] {
            let rank = ((q / 100.0) * values.len() as f64).ceil().max(1.0) as usize;
            let exact = values[rank - 1];
            let est = h.percentile(q);
            assert!(est <= exact, "p{q}: estimate {est} above exact {exact}");
            let rel_err = (exact - est) as f64 / exact as f64;
            assert!(
                rel_err <= 1.0 / SUB_BUCKETS as f64 + 1e-9,
                "p{q}: estimate {est} is {rel_err:.4} below exact {exact} (bound 6.25%)"
            );
        }
    }

    #[test]
    fn sharded_quantiles_match_the_single_histogram() {
        // The watchdog merges per-thread shards; quantiles of the merged
        // histogram must be identical to recording everything into one.
        let shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        let whole = Histogram::new();
        for i in 0..8_000u64 {
            let v = (i * 131) % 50_000 + 1;
            shards[(i % 4) as usize].record(v);
            whole.record(v);
        }
        let merged = Histogram::new();
        for s in &shards {
            merged.merge(s);
        }
        for q in [10.0, 50.0, 90.0, 99.0, 99.9] {
            assert_eq!(merged.percentile(q), whole.percentile(q), "p{q} diverges after merge");
        }
        assert_eq!(merged.report(), whole.report());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            whole.record(v * 3);
        }
        for v in 0..500u64 {
            b.record(v * 7 + 1);
            whole.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.report(), whole.report());
    }

    #[test]
    fn empty_report_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.report(), Report::default());
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record(t * 1_000 + (i % 97));
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }
}
