//! Structured tracing with cross-layer context propagation.
//!
//! A [`TraceCtx`] is allocated at the host-RDBMS statement boundary
//! ([`span_root`]) and flows with the work: the RPC fabric copies the
//! sender's current context into each envelope and installs it on the
//! child-agent thread, so spans opened in the DLFM agent and in minidb
//! carry the originating statement's `trace_id`.
//!
//! Finished spans are pushed into a global bounded ring buffer that
//! keeps the newest events; tests and bench binaries drain it with
//! [`drain_spans`] and assert on what the system actually did.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::entropy;

/// Identity of one traced unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Shared by every span descending from one root (one host statement).
    pub trace_id: u64,
    /// Unique per span.
    pub span_id: u64,
}

impl TraceCtx {
    /// A fresh root context (new trace).
    pub fn root() -> TraceCtx {
        TraceCtx { trace_id: entropy(), span_id: entropy() }
    }

    /// A child context: same trace, new span.
    pub fn child(&self) -> TraceCtx {
        TraceCtx { trace_id: self.trace_id, span_id: entropy() }
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The context installed on this thread, if any.
pub fn current_ctx() -> Option<TraceCtx> {
    CURRENT.with(|c| c.get())
}

/// Install (or clear) the context on this thread, returning the previous
/// one. The RPC fabric calls this on child-agent threads with the
/// envelope's context.
pub fn set_current_ctx(ctx: Option<TraceCtx>) -> Option<TraceCtx> {
    CURRENT.with(|c| c.replace(ctx))
}

/// Which layer of the stack a span ran in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Host RDBMS (statement boundary, 2PC coordination).
    Host,
    /// The RPC fabric between host agents and DLFM child agents.
    Rpc,
    /// The DLFM child agent (link/unlink/prepare/commit processing).
    Dlfm,
    /// The local minidb "black box" database.
    Minidb,
    /// Background daemons (copy, delete-group, GC, retrieve, upcall).
    Daemon,
}

impl Layer {
    /// Stable lowercase name (used in logs and metric labels).
    pub fn as_str(&self) -> &'static str {
        match self {
            Layer::Host => "host",
            Layer::Rpc => "rpc",
            Layer::Dlfm => "dlfm",
            Layer::Minidb => "minidb",
            Layer::Daemon => "daemon",
        }
    }
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Completed normally.
    Ok,
    /// Completed with an error.
    Err,
}

/// One finished span, as drained from the ring.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Global drain order (monotonic).
    pub seq: u64,
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id, 0 for roots.
    pub parent_span_id: u64,
    /// Stack layer.
    pub layer: Layer,
    /// Operation name (e.g. `LinkFile`, `wal_force`).
    pub op: &'static str,
    /// How the span ended.
    pub outcome: Outcome,
    /// Monotonic microseconds since process start when the span opened
    /// (same clock as the journal, so spans and journal events share one
    /// timeline in the Chrome-trace export).
    pub start_micros: u64,
    /// Wall-clock duration.
    pub duration: Duration,
}

/// Bounded ring of finished spans: a lock-free slot claim (one
/// `fetch_add`) plus a short per-slot latch for the write. Overflow
/// overwrites the oldest events, keeping the newest — and counts each
/// overwrite, so drops are observable instead of silent.
pub struct SpanRing {
    slots: Box<[Mutex<Option<SpanEvent>>]>,
    next: AtomicU64,
    dropped: AtomicU64,
    drained: AtomicU64,
}

impl SpanRing {
    /// A ring holding at most `capacity` finished spans.
    pub fn new(capacity: usize) -> SpanRing {
        assert!(capacity > 0, "ring capacity must be positive");
        let slots: Vec<Mutex<Option<SpanEvent>>> =
            (0..capacity).map(|_| Mutex::new(None)).collect();
        SpanRing {
            slots: slots.into_boxed_slice(),
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Push one finished span, overwriting (and counting) the oldest on
    /// overflow.
    pub fn push(&self, mut event: SpanEvent) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        let slot = (seq % self.slots.len() as u64) as usize;
        let prev = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner()).replace(event);
        if prev.is_some() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copy every buffered span, oldest first, leaving the ring intact
    /// (exports must not destroy the evidence they report).
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> = Vec::new();
        for slot in self.slots.iter() {
            if let Some(ev) = slot.lock().unwrap_or_else(|e| e.into_inner()).clone() {
                out.push(ev);
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Take every buffered span, oldest first, leaving the ring empty.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> = Vec::new();
        for slot in self.slots.iter() {
            if let Some(ev) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                out.push(ev);
            }
        }
        out.sort_by_key(|e| e.seq);
        self.drained.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Spans pushed over the ring's lifetime (including overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Spans lost to ring overflow before anyone drained them.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Spans taken out via [`SpanRing::drain`].
    pub fn drained(&self) -> u64 {
        self.drained.load(Ordering::Relaxed)
    }
}

/// Capacity of the global ring ([`global_ring`]).
pub const GLOBAL_RING_CAPACITY: usize = 8192;

/// The process-wide span ring.
pub fn global_ring() -> &'static SpanRing {
    static RING: OnceLock<SpanRing> = OnceLock::new();
    RING.get_or_init(|| SpanRing::new(GLOBAL_RING_CAPACITY))
}

/// Drain the global ring (oldest first).
pub fn drain_spans() -> Vec<SpanEvent> {
    global_ring().drain()
}

/// RAII span: opens as a child of the thread's current context (or as a
/// fresh root when none is installed), installs itself as current, and on
/// drop records a [`SpanEvent`] and restores the previous context.
pub struct SpanGuard {
    ctx: TraceCtx,
    parent_span_id: u64,
    prev: Option<TraceCtx>,
    layer: Layer,
    op: &'static str,
    start: Instant,
    start_micros: u64,
    outcome: Outcome,
}

impl SpanGuard {
    /// The context this span runs under.
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }

    /// Mark the span as failed.
    pub fn fail(&mut self) {
        self.outcome = Outcome::Err;
    }

    /// Set the outcome from a `Result`-ish flag.
    pub fn set_ok(&mut self, ok: bool) {
        self.outcome = if ok { Outcome::Ok } else { Outcome::Err };
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        set_current_ctx(self.prev);
        global_ring().push(SpanEvent {
            seq: 0, // assigned by the ring
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_span_id: self.parent_span_id,
            layer: self.layer,
            op: self.op,
            outcome: self.outcome,
            start_micros: self.start_micros,
            duration: self.start.elapsed(),
        });
    }
}

/// Open a span under the current context (child), or as a root when the
/// thread has none.
pub fn span(layer: Layer, op: &'static str) -> SpanGuard {
    let prev = current_ctx();
    let (ctx, parent) = match prev {
        Some(p) => (p.child(), p.span_id),
        None => (TraceCtx::root(), 0),
    };
    set_current_ctx(Some(ctx));
    SpanGuard {
        ctx,
        parent_span_id: parent,
        prev,
        layer,
        op,
        start: Instant::now(),
        start_micros: crate::journal::now_micros(),
        outcome: Outcome::Ok,
    }
}

/// Open a root span: always starts a fresh trace, regardless of the
/// thread's current context. The host statement boundary uses this.
pub fn span_root(layer: Layer, op: &'static str) -> SpanGuard {
    let prev = current_ctx();
    let ctx = TraceCtx::root();
    set_current_ctx(Some(ctx));
    SpanGuard {
        ctx,
        parent_span_id: 0,
        prev,
        layer,
        op,
        start: Instant::now(),
        start_micros: crate::journal::now_micros(),
        outcome: Outcome::Ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_keeps_trace_id() {
        let root = TraceCtx::root();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
    }

    #[test]
    fn ring_overflow_keeps_newest() {
        let ring = SpanRing::new(4);
        for i in 0..10u64 {
            ring.push(SpanEvent {
                seq: 0,
                trace_id: i,
                span_id: i,
                parent_span_id: 0,
                layer: Layer::Host,
                op: "t",
                outcome: Outcome::Ok,
                start_micros: 0,
                duration: Duration::ZERO,
            });
        }
        assert_eq!(ring.dropped(), 6, "overwrites are counted exactly");
        assert_eq!(ring.snapshot().len(), 4, "snapshot is non-destructive");
        let drained = ring.drain();
        assert_eq!(drained.len(), 4);
        let ids: Vec<u64> = drained.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "only the newest events survive, oldest first");
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.drained(), 4);
        assert!(ring.drain().is_empty(), "drain empties the ring");
    }

    #[test]
    fn span_nesting_restores_context() {
        assert_eq!(current_ctx(), None);
        {
            let outer = span_root(Layer::Host, "outer");
            let outer_ctx = outer.ctx();
            assert_eq!(current_ctx(), Some(outer_ctx));
            {
                let inner = span(Layer::Minidb, "inner");
                assert_eq!(inner.ctx().trace_id, outer_ctx.trace_id, "child shares trace");
                assert_eq!(current_ctx(), Some(inner.ctx()));
            }
            assert_eq!(current_ctx(), Some(outer_ctx), "inner drop restores outer");
        }
        assert_eq!(current_ctx(), None, "root drop clears the thread");
        // The two spans are in the global ring, inner first (it closed
        // first), sharing one trace id.
        let spans = drain_spans();
        let ours: Vec<&SpanEvent> =
            spans.iter().filter(|e| e.op == "inner" || e.op == "outer").collect();
        assert_eq!(ours.len(), 2);
        assert_eq!(ours[0].op, "inner");
        assert_eq!(ours[1].op, "outer");
        assert_eq!(ours[0].trace_id, ours[1].trace_id);
        assert_eq!(ours[0].parent_span_id, ours[1].span_id);
    }

    #[test]
    fn cross_thread_propagation_via_set_current() {
        let root = TraceCtx::root();
        let handle = std::thread::spawn(move || {
            set_current_ctx(Some(root));
            let s = span(Layer::Dlfm, "remote");
            s.ctx().trace_id
        });
        assert_eq!(handle.join().unwrap(), root.trace_id);
    }
}
