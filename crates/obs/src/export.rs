//! Chrome-trace / Perfetto JSON export over the span ring and the journal.
//!
//! [`export_chrome_trace`] renders the buffered spans as `ph:"X"` complete
//! events and the journal timeline as `ph:"i"` instant events in the
//! Chrome trace-event JSON format, which <https://ui.perfetto.dev> (and
//! `chrome://tracing`) load directly. Both rings are *snapshotted*, not
//! drained — exporting the evidence must not destroy it.
//!
//! The JSON is hand-rolled (the workspace has no serde_json);
//! [`json_is_well_formed`] is the matching minimal syntax checker used by
//! CI and the fault-matrix tests to validate an export without a parser
//! dependency.

use crate::journal::{self, JournalEvent};
use crate::trace::{global_ring, Layer, Outcome, SpanEvent};

/// Escape a string for a JSON string literal.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Stable small process id per layer, so Perfetto groups spans by stack
/// layer (named via `process_name` metadata events).
fn layer_pid(layer: Layer) -> u32 {
    match layer {
        Layer::Host => 1,
        Layer::Rpc => 2,
        Layer::Dlfm => 3,
        Layer::Minidb => 4,
        Layer::Daemon => 5,
    }
}

/// Render spans + journal events as a Chrome trace-event JSON document.
pub fn chrome_trace(spans: &[SpanEvent], events: &[JournalEvent]) -> String {
    let mut out = String::with_capacity(256 + 160 * (spans.len() + events.len()));
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
    };
    // Name the per-layer "processes" so the Perfetto track list reads as
    // the stack: host / rpc / dlfm / minidb / daemon.
    for layer in [Layer::Host, Layer::Rpc, Layer::Dlfm, Layer::Minidb, Layer::Daemon] {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            layer_pid(layer),
            layer.as_str()
        ));
    }
    for s in spans {
        push_sep(&mut out, &mut first);
        // One thread track per trace: spans of one statement nest visually.
        let tid = s.trace_id % 1_000_000;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{{\"trace_id\":\"{:016x}\",\
             \"span_id\":\"{:016x}\",\"outcome\":\"{}\"}}}}",
            s.op,
            s.layer.as_str(),
            s.start_micros,
            s.duration.as_micros().max(1),
            layer_pid(s.layer),
            tid,
            s.trace_id,
            s.span_id,
            if s.outcome == Outcome::Ok { "ok" } else { "err" },
        ));
    }
    for e in events {
        push_sep(&mut out, &mut first);
        let tid = e.trace_id % 1_000_000;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"journal\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\
             \"pid\":6,\"tid\":{},\"args\":{{\"txn\":{},\"trace_id\":\"{:016x}\",\"detail\":\"",
            e.kind.as_str(),
            e.micros,
            tid,
            e.txn,
            e.trace_id,
        ));
        escape_into(&e.detail, &mut out);
        out.push_str("\"}}");
    }
    // The journal's own pseudo-process.
    push_sep(&mut out, &mut first);
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":6,\"tid\":0,\
         \"args\":{\"name\":\"journal\"}}",
    );
    out.push_str("]}");
    out
}

/// Export the global span ring and journal as a Chrome trace JSON
/// document (non-destructive snapshots of both).
pub fn export_chrome_trace() -> String {
    chrome_trace(&global_ring().snapshot(), &journal::snapshot())
}

/// Minimal JSON well-formedness check: one value, correctly nested
/// structures, valid string/number/literal tokens, nothing trailing.
/// Enough to catch every way hand-rolled emission can go wrong (unescaped
/// quotes, unbalanced brackets, stray commas producing empty members).
pub fn json_is_well_formed(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let ok = parse_value(bytes, &mut pos);
    skip_ws(bytes, &mut pos);
    ok && pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, b"true"),
        Some(b'f') => parse_literal(b, pos, b"false"),
        Some(b'n') => parse_literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => false,
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return false;
        }
    }
    *pos > start
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) != Some(&b'"') {
        return false;
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return false;
                            }
                            *pos += 1;
                        }
                    }
                    _ => return false,
                }
            }
            0x00..=0x1f => return false, // control chars must be escaped
            _ => *pos += 1,
        }
    }
    false // unterminated
}

fn parse_object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // past '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // past '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{JournalEvent, JournalKind};
    use std::time::Duration;

    fn span(op: &'static str, layer: Layer, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            seq: 0,
            trace_id: 0xabcd,
            span_id: 1,
            parent_span_id: 0,
            layer,
            op,
            outcome: Outcome::Ok,
            start_micros: start,
            duration: Duration::from_micros(dur),
        }
    }

    fn event(kind: JournalKind, detail: &str) -> JournalEvent {
        JournalEvent {
            seq: 0,
            micros: 42,
            trace_id: 0xabcd,
            txn: 7,
            kind,
            detail: detail.to_string(),
        }
    }

    #[test]
    fn export_is_well_formed_and_carries_both_sources() {
        let spans = [span("stmt", Layer::Host, 10, 300), span("wal_force", Layer::Minidb, 50, 80)];
        let events = [
            event(JournalKind::Deadlock, "txn1 -> txn2 -> txn1, victim txn2"),
            event(JournalKind::FaultFire, "fault point \"rpc.call.drop\"\nfired"),
        ];
        let json = chrome_trace(&spans, &events);
        assert!(json_is_well_formed(&json), "export must be valid JSON: {json}");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"wal_force\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("victim txn2"));
        assert!(json.contains("\\\"rpc.call.drop\\\""), "quotes in details are escaped");
    }

    #[test]
    fn empty_export_is_still_valid() {
        let json = chrome_trace(&[], &[]);
        assert!(json_is_well_formed(&json), "empty export must be valid JSON: {json}");
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn json_checker_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "{\"a\":[1,2.5,-3e4,true,false,null,\"s\\n\"]}",
            "  {\"traceEvents\":[{\"ts\":1}]} ",
        ] {
            assert!(json_is_well_formed(good), "should accept: {good}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "{\"a\":1}x",
            "{\"a\":\"unterminated}",
            "{\"a\":01e}",
            "[\"tab\tliteral\"]",
        ] {
            assert!(!json_is_well_formed(bad), "should reject: {bad}");
        }
    }

    #[test]
    fn global_export_includes_live_spans() {
        crate::journal::arm();
        {
            let _s = crate::trace::span(Layer::Daemon, "export_test_span");
        }
        crate::journal::record(JournalKind::Info, 0, || "export test event".into());
        let json = export_chrome_trace();
        assert!(json_is_well_formed(&json));
        assert!(json.contains("export_test_span"));
        assert!(json.contains("export test event"));
        crate::journal::disarm();
    }
}
