//! Chrome-trace / Perfetto JSON export over the span ring and the journal.
//!
//! [`export_chrome_trace`] renders the buffered spans as `ph:"X"` complete
//! events and the journal timeline as `ph:"i"` instant events in the
//! Chrome trace-event JSON format, which <https://ui.perfetto.dev> (and
//! `chrome://tracing`) load directly. Both rings are *snapshotted*, not
//! drained — exporting the evidence must not destroy it.
//!
//! The JSON is hand-rolled (the workspace has no serde_json);
//! [`json_is_well_formed`] is the matching minimal syntax checker used by
//! CI and the fault-matrix tests to validate an export without a parser
//! dependency.

use crate::journal::{self, JournalEvent};
use crate::trace::{global_ring, Layer, Outcome, SpanEvent};

/// Escape a string for a JSON string literal.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Stable small process id per layer, so Perfetto groups spans by stack
/// layer (named via `process_name` metadata events).
fn layer_pid(layer: Layer) -> u32 {
    match layer {
        Layer::Host => 1,
        Layer::Rpc => 2,
        Layer::Dlfm => 3,
        Layer::Minidb => 4,
        Layer::Daemon => 5,
    }
}

/// Render spans + journal events as a Chrome trace-event JSON document.
pub fn chrome_trace(spans: &[SpanEvent], events: &[JournalEvent]) -> String {
    let mut out = String::with_capacity(256 + 160 * (spans.len() + events.len()));
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
    };
    // Name the per-layer "processes" so the Perfetto track list reads as
    // the stack: host / rpc / dlfm / minidb / daemon.
    for layer in [Layer::Host, Layer::Rpc, Layer::Dlfm, Layer::Minidb, Layer::Daemon] {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            layer_pid(layer),
            layer.as_str()
        ));
    }
    for s in spans {
        push_sep(&mut out, &mut first);
        // One thread track per trace: spans of one statement nest visually.
        let tid = s.trace_id % 1_000_000;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{{\"trace_id\":\"{:016x}\",\
             \"span_id\":\"{:016x}\",\"outcome\":\"{}\"}}}}",
            s.op,
            s.layer.as_str(),
            s.start_micros,
            s.duration.as_micros().max(1),
            layer_pid(s.layer),
            tid,
            s.trace_id,
            s.span_id,
            if s.outcome == Outcome::Ok { "ok" } else { "err" },
        ));
    }
    for e in events {
        push_sep(&mut out, &mut first);
        let tid = e.trace_id % 1_000_000;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"journal\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\
             \"pid\":6,\"tid\":{},\"args\":{{\"txn\":{},\"trace_id\":\"{:016x}\",\"detail\":\"",
            e.kind.as_str(),
            e.micros,
            tid,
            e.txn,
            e.trace_id,
        ));
        escape_into(&e.detail, &mut out);
        out.push_str("\"}}");
    }
    // The journal's own pseudo-process.
    push_sep(&mut out, &mut first);
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":6,\"tid\":0,\
         \"args\":{\"name\":\"journal\"}}",
    );
    out.push_str("]}");
    out
}

/// Export the global span ring and journal as a Chrome trace JSON
/// document (non-destructive snapshots of both).
pub fn export_chrome_trace() -> String {
    chrome_trace(&global_ring().snapshot(), &journal::snapshot())
}

// ---------------------------------------------------------------------
// Multi-process merge (fleet tracing)
// ---------------------------------------------------------------------

/// A finished span received from another process (over the telemetry
/// RPC). Same shape as [`SpanEvent`] but with owned strings: `op` is a
/// `&'static str` locally and cannot cross a process boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteSpan {
    /// Trace id shared with the originating host statement.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id, 0 for roots.
    pub parent_span_id: u64,
    /// Stack layer name (`host`/`rpc`/`dlfm`/`minidb`/`daemon`).
    pub layer: String,
    /// Operation name.
    pub op: String,
    /// Whether the span finished without error.
    pub ok: bool,
    /// Start in the *origin process's* monotonic µs clock.
    pub start_micros: u64,
    /// Duration in µs.
    pub dur_micros: u64,
}

/// Render spans in the line format `parse_span_dump` reads back:
/// `<trace_id:x> <span_id:x> <parent:x> <layer> <ok|err> <start> <dur> <op>`
/// one span per line. This is what the `Spans` telemetry RPC ships — a
/// text format because `SpanEvent::op` is a `&'static str` and the
/// workspace has no serde.
pub fn span_dump(spans: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(64 * spans.len());
    for s in spans {
        out.push_str(&format!(
            "{:016x} {:016x} {:016x} {} {} {} {} {}\n",
            s.trace_id,
            s.span_id,
            s.parent_span_id,
            s.layer.as_str(),
            if s.outcome == Outcome::Ok { "ok" } else { "err" },
            s.start_micros,
            s.duration.as_micros(),
            s.op,
        ));
    }
    out
}

/// Render the global span ring in [`span_dump`] format (non-destructive).
pub fn export_span_dump() -> String {
    span_dump(&global_ring().snapshot())
}

/// Parse a [`span_dump`] document. Malformed lines are skipped, not
/// fatal: a truncated dump from a crashing daemon still yields the spans
/// that survived.
pub fn parse_span_dump(text: &str) -> Vec<RemoteSpan> {
    let mut spans = Vec::new();
    for line in text.lines() {
        let mut parts = line.splitn(8, ' ');
        let parsed = (|| {
            let trace_id = u64::from_str_radix(parts.next()?, 16).ok()?;
            let span_id = u64::from_str_radix(parts.next()?, 16).ok()?;
            let parent_span_id = u64::from_str_radix(parts.next()?, 16).ok()?;
            let layer = parts.next()?.to_string();
            let ok = match parts.next()? {
                "ok" => true,
                "err" => false,
                _ => return None,
            };
            let start_micros = parts.next()?.parse().ok()?;
            let dur_micros = parts.next()?.parse().ok()?;
            let op = parts.next()?.to_string();
            Some(RemoteSpan {
                trace_id,
                span_id,
                parent_span_id,
                layer,
                op,
                ok,
                start_micros,
                dur_micros,
            })
        })();
        if let Some(s) = parsed {
            spans.push(s);
        }
    }
    spans
}

/// One remote process's contribution to a merged fleet trace.
#[derive(Debug, Clone)]
pub struct ProcessTrace {
    /// Display name for the Perfetto process track (e.g. `dlfm[shard0]`).
    pub name: String,
    /// Estimated offset of this process's monotonic clock relative to the
    /// local one, in µs (`local_now ≈ remote_now - offset`); added to each
    /// span's `ts` so all processes share the local timeline.
    pub clock_offset_micros: i64,
    /// The process's finished spans.
    pub spans: Vec<RemoteSpan>,
}

/// Merge the local spans + journal with remote per-process span dumps
/// into ONE Chrome trace JSON document. Local spans keep the per-layer
/// pseudo-processes of [`chrome_trace`]; each remote process gets its own
/// pid (100, 101, …) named via `process_name` metadata, with timestamps
/// shifted onto the local clock by its estimated offset.
pub fn merge_chrome_trace(
    spans: &[SpanEvent],
    events: &[JournalEvent],
    remotes: &[ProcessTrace],
) -> String {
    let local = chrome_trace(spans, events);
    // Splice the remote events into the traceEvents array: drop the
    // closing "]}" and append.
    let mut out = local.strip_suffix("]}").expect("chrome_trace shape").to_string();
    for (i, proc) in remotes.iter().enumerate() {
        let pid = 100 + i as u32;
        out.push(',');
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\""
        ));
        escape_into(&proc.name, &mut out);
        out.push_str("\"}}");
        for s in &proc.spans {
            let ts = (s.start_micros as i64).saturating_add(proc.clock_offset_micros).max(0);
            let tid = s.trace_id % 1_000_000;
            out.push_str(",{\"name\":\"");
            escape_into(&s.op, &mut out);
            out.push_str("\",\"cat\":\"");
            escape_into(&s.layer, &mut out);
            out.push_str(&format!(
                "\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"trace_id\":\"{:016x}\",\
                 \"span_id\":\"{:016x}\",\"outcome\":\"{}\"}}}}",
                ts,
                s.dur_micros.max(1),
                pid,
                tid,
                s.trace_id,
                s.span_id,
                if s.ok { "ok" } else { "err" },
            ));
        }
    }
    out.push_str("]}");
    out
}

/// Minimal JSON well-formedness check: one value, correctly nested
/// structures, valid string/number/literal tokens, nothing trailing.
/// Enough to catch every way hand-rolled emission can go wrong (unescaped
/// quotes, unbalanced brackets, stray commas producing empty members).
pub fn json_is_well_formed(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let ok = parse_value(bytes, &mut pos);
    skip_ws(bytes, &mut pos);
    ok && pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, b"true"),
        Some(b'f') => parse_literal(b, pos, b"false"),
        Some(b'n') => parse_literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => false,
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return false;
        }
    }
    *pos > start
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) != Some(&b'"') {
        return false;
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return false;
                            }
                            *pos += 1;
                        }
                    }
                    _ => return false,
                }
            }
            0x00..=0x1f => return false, // control chars must be escaped
            _ => *pos += 1,
        }
    }
    false // unterminated
}

fn parse_object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // past '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // past '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{JournalEvent, JournalKind};
    use std::time::Duration;

    fn span(op: &'static str, layer: Layer, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            seq: 0,
            trace_id: 0xabcd,
            span_id: 1,
            parent_span_id: 0,
            layer,
            op,
            outcome: Outcome::Ok,
            start_micros: start,
            duration: Duration::from_micros(dur),
        }
    }

    fn event(kind: JournalKind, detail: &str) -> JournalEvent {
        JournalEvent {
            seq: 0,
            micros: 42,
            trace_id: 0xabcd,
            txn: 7,
            kind,
            detail: detail.to_string(),
        }
    }

    #[test]
    fn export_is_well_formed_and_carries_both_sources() {
        let spans = [span("stmt", Layer::Host, 10, 300), span("wal_force", Layer::Minidb, 50, 80)];
        let events = [
            event(JournalKind::Deadlock, "txn1 -> txn2 -> txn1, victim txn2"),
            event(JournalKind::FaultFire, "fault point \"rpc.call.drop\"\nfired"),
        ];
        let json = chrome_trace(&spans, &events);
        assert!(json_is_well_formed(&json), "export must be valid JSON: {json}");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"wal_force\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("victim txn2"));
        assert!(json.contains("\\\"rpc.call.drop\\\""), "quotes in details are escaped");
    }

    #[test]
    fn empty_export_is_still_valid() {
        let json = chrome_trace(&[], &[]);
        assert!(json_is_well_formed(&json), "empty export must be valid JSON: {json}");
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn json_checker_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "{\"a\":[1,2.5,-3e4,true,false,null,\"s\\n\"]}",
            "  {\"traceEvents\":[{\"ts\":1}]} ",
        ] {
            assert!(json_is_well_formed(good), "should accept: {good}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "{\"a\":1}x",
            "{\"a\":\"unterminated}",
            "{\"a\":01e}",
            "[\"tab\tliteral\"]",
        ] {
            assert!(!json_is_well_formed(bad), "should reject: {bad}");
        }
    }

    #[test]
    fn span_dump_roundtrips_through_parse() {
        let spans =
            [span("stmt", Layer::Host, 10, 300), span("wal_force", Layer::Minidb, 50, 80), {
                let mut s = span("lock_wait", Layer::Minidb, 70, 20);
                s.outcome = Outcome::Err;
                s.parent_span_id = 0x77;
                s
            }];
        let dump = span_dump(&spans);
        let parsed = parse_span_dump(&dump);
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].op, "stmt");
        assert_eq!(parsed[0].layer, "host");
        assert_eq!(parsed[0].trace_id, 0xabcd);
        assert!(parsed[0].ok);
        assert_eq!(parsed[1].dur_micros, 80);
        assert!(!parsed[2].ok);
        assert_eq!(parsed[2].parent_span_id, 0x77);
        // Garbage and truncated lines are skipped, not fatal.
        let messy = format!("not a span line\n{dump}deadbeef 1 2 host ok\n");
        assert_eq!(parse_span_dump(&messy).len(), 3);
    }

    #[test]
    fn merged_trace_is_well_formed_and_aligned() {
        let local = [span("stmt", Layer::Host, 1000, 500)];
        let remote = ProcessTrace {
            name: "dlfm[shard\"0\"]".into(),
            clock_offset_micros: -400,
            spans: vec![RemoteSpan {
                trace_id: 0xabcd,
                span_id: 9,
                parent_span_id: 1,
                layer: "dlfm".into(),
                op: "link_file".into(),
                ok: true,
                start_micros: 1500,
                dur_micros: 100,
            }],
        };
        let json = merge_chrome_trace(&local, &[], &[remote]);
        assert!(json_is_well_formed(&json), "merged export must be valid JSON: {json}");
        assert!(json.contains("\"pid\":100"));
        assert!(json.contains("link_file"));
        assert!(json.contains("\\\"0\\\""), "remote process names are escaped");
        // 1500 - 400 = 1100 on the local clock.
        assert!(json.contains("\"ts\":1100"));
        // A hugely negative offset clamps at 0 instead of emitting a
        // negative timestamp Perfetto rejects.
        let mut neg = ProcessTrace {
            name: "x".into(),
            clock_offset_micros: -1_000_000,
            spans: parse_span_dump(&span_dump(&local)),
        };
        neg.spans[0].start_micros = 10;
        let json = merge_chrome_trace(&[], &[], &[neg]);
        assert!(json_is_well_formed(&json));
        assert!(json.contains("\"ts\":0"));
    }

    #[test]
    fn global_export_includes_live_spans() {
        crate::journal::arm();
        {
            let _s = crate::trace::span(Layer::Daemon, "export_test_span");
        }
        crate::journal::record(JournalKind::Info, 0, || "export test event".into());
        let json = export_chrome_trace();
        assert!(json_is_well_formed(&json));
        assert!(json.contains("export_test_span"));
        assert!(json.contains("export test event"));
        crate::journal::disarm();
    }
}
