//! Prometheus-text-format metrics registry.
//!
//! A [`Registry`] is a builder: each layer contributes counters, gauges,
//! and histograms, and [`Registry::render`] produces one exposition-format
//! string (`# HELP`/`# TYPE` headers once per family, then
//! `name{labels} value` samples). Histograms render the conventional
//! cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.

use std::collections::HashSet;
use std::fmt::Write;

use crate::hist::Histogram;

/// Cumulative `le` boundaries for rendered histograms, in the recorded
/// unit (the workspace records microseconds: 10us .. 100s).
pub const LE_BOUNDS: [u64; 8] =
    [10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// A metrics registry that renders to Prometheus text format.
#[derive(Default)]
pub struct Registry {
    buf: String,
    seen: HashSet<String>,
}

fn fmt_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", v.replace('"', "'"))).collect();
    format!("{{{}}}", inner.join(","))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if self.seen.insert(name.to_string()) {
            let _ = writeln!(self.buf, "# HELP {name} {help}");
            let _ = writeln!(self.buf, "# TYPE {name} {kind}");
        }
    }

    /// Add a monotonic counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.buf, "{name}{} {value}", fmt_labels(labels));
    }

    /// Add a gauge sample (a value that can go up and down).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: i64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.buf, "{name}{} {value}", fmt_labels(labels));
    }

    /// Add a histogram family member: cumulative buckets at [`LE_BOUNDS`]
    /// plus `+Inf`, `_sum`, and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.header(name, help, "histogram");
        for le in LE_BOUNDS {
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            let le_s = le.to_string();
            with_le.push(("le", &le_s));
            let _ = writeln!(
                self.buf,
                "{name}_bucket{} {}",
                fmt_labels(&with_le),
                h.count_at_or_below(le)
            );
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        let _ = writeln!(self.buf, "{name}_bucket{} {}", fmt_labels(&with_inf), h.count());
        let _ = writeln!(self.buf, "{name}_sum{} {}", fmt_labels(labels), h.sum());
        let _ = writeln!(self.buf, "{name}_count{} {}", fmt_labels(labels), h.count());
    }

    /// Finish and return the exposition text.
    pub fn render(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal Prometheus text-format line check: every non-comment,
    /// non-blank line must be `name{labels}? value` with a parseable
    /// float value and balanced braces.
    pub fn assert_parseable(text: &str) {
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name_part, value) =
                line.rsplit_once(' ').unwrap_or_else(|| panic!("no value in {line:?}"));
            assert!(value.parse::<f64>().is_ok(), "unparseable value {value:?} in {line:?}");
            let metric = name_part;
            let name_end = metric.find('{').unwrap_or(metric.len());
            let name = &metric[..name_end];
            assert!(
                !name.is_empty()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
            if name_end < metric.len() {
                assert!(metric.ends_with('}'), "unbalanced braces in {line:?}");
            }
        }
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let h = Histogram::new();
        for v in [5u64, 50, 5_000, 500_000] {
            h.record(v);
        }
        let mut r = Registry::new();
        r.counter("dlfm_links_total", "Files linked.", &[], 17);
        r.counter("dlfm_ops_total", "Ops by kind.", &[("op", "link")], 9);
        r.counter("dlfm_ops_total", "Ops by kind.", &[("op", "unlink")], 8);
        r.gauge("rpc_in_flight", "Calls in flight.", &[], 3);
        r.histogram("op_latency_micros", "Latency.", &[("op", "link")], &h);
        let text = r.render();

        assert_parseable(&text);
        // Headers appear exactly once per family.
        assert_eq!(text.matches("# TYPE dlfm_ops_total counter").count(), 1);
        assert!(text.contains("dlfm_ops_total{op=\"link\"} 9"));
        assert!(text.contains("dlfm_ops_total{op=\"unlink\"} 8"));
        assert!(text.contains("rpc_in_flight 3"));
        // Histogram: cumulative buckets, +Inf equals count.
        assert!(text.contains("op_latency_micros_bucket{op=\"link\",le=\"10\"} 1"));
        assert!(text.contains("op_latency_micros_bucket{op=\"link\",le=\"+Inf\"} 4"));
        assert!(text.contains("op_latency_micros_count{op=\"link\"} 4"));
        assert!(text.contains("op_latency_micros_sum{op=\"link\"} 505055"));
    }

    #[test]
    fn le_buckets_are_cumulative_and_monotonic() {
        let h = Histogram::new();
        for v in 0..10_000u64 {
            h.record(v * 13);
        }
        let mut prev = 0;
        for le in LE_BOUNDS {
            let c = h.count_at_or_below(le);
            assert!(c >= prev, "bucket counts must be cumulative");
            prev = c;
        }
        assert!(h.count() >= prev);
    }
}
