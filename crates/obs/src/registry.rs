//! Prometheus-text-format metrics registry.
//!
//! A [`Registry`] is a builder: each layer contributes counters, gauges,
//! and histograms, and [`Registry::render`] produces one exposition-format
//! string (`# HELP`/`# TYPE` headers once per family, then
//! `name{labels} value` samples). Histograms render the conventional
//! cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.

use std::collections::HashSet;
use std::fmt::Write;

use crate::hist::Histogram;

/// Cumulative `le` boundaries for rendered histograms, in the recorded
/// unit (the workspace records microseconds: 10us .. 100s).
pub const LE_BOUNDS: [u64; 8] =
    [10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// A metrics registry that renders to Prometheus text format.
#[derive(Default)]
pub struct Registry {
    buf: String,
    seen: HashSet<String>,
}

fn fmt_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", v.replace('"', "'"))).collect();
    format!("{{{}}}", inner.join(","))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if self.seen.insert(name.to_string()) {
            let _ = writeln!(self.buf, "# HELP {name} {help}");
            let _ = writeln!(self.buf, "# TYPE {name} {kind}");
        }
    }

    /// Add a monotonic counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.buf, "{name}{} {value}", fmt_labels(labels));
    }

    /// Add a gauge sample (a value that can go up and down).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: i64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.buf, "{name}{} {value}", fmt_labels(labels));
    }

    /// Add a histogram family member: cumulative buckets at [`LE_BOUNDS`]
    /// plus `+Inf`, `_sum`, and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.header(name, help, "histogram");
        for le in LE_BOUNDS {
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            let le_s = le.to_string();
            with_le.push(("le", &le_s));
            let _ = writeln!(
                self.buf,
                "{name}_bucket{} {}",
                fmt_labels(&with_le),
                h.count_at_or_below(le)
            );
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        let _ = writeln!(self.buf, "{name}_bucket{} {}", fmt_labels(&with_inf), h.count());
        let _ = writeln!(self.buf, "{name}_sum{} {}", fmt_labels(labels), h.sum());
        let _ = writeln!(self.buf, "{name}_count{} {}", fmt_labels(labels), h.count());
    }

    /// Finish and return the exposition text.
    pub fn render(self) -> String {
        self.buf
    }
}

/// One `name{labels} value` sample parsed back out of exposition text.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name, without the label set.
    pub name: String,
    /// The raw `{...}` label block, or empty when the sample has none.
    pub labels: String,
    /// The sample value.
    pub value: f64,
}

/// Parse a single exposition line into a [`Sample`].
///
/// Returns `None` for anything that is not a well-formed sample: comments
/// (`# HELP`/`# TYPE`), blank lines, lines with no space-separated value,
/// unparseable values, bad metric names, or unbalanced label braces.
/// Scrapers must tolerate such lines rather than die on them.
pub fn parse_line(line: &str) -> Option<Sample> {
    let line = line.trim_end();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (metric, value) = line.rsplit_once(' ')?;
    let value: f64 = value.parse().ok()?;
    let name_end = metric.find('{').unwrap_or(metric.len());
    let name = &metric[..name_end];
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return None;
    }
    let labels = &metric[name_end..];
    if !(labels.is_empty() || (labels.starts_with('{') && labels.ends_with('}'))) {
        return None;
    }
    Some(Sample { name: name.to_string(), labels: labels.to_string(), value })
}

/// Parse every well-formed sample out of exposition text, silently
/// skipping comments, blanks, and malformed lines.
pub fn parse_samples(text: &str) -> Vec<Sample> {
    text.lines().filter_map(parse_line).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every non-comment, non-blank line the registry renders must parse
    /// back as a sample — the renderer should never emit a line a scraper
    /// would have to skip.
    pub fn assert_parseable(text: &str) {
        for line in text.lines() {
            if line.trim_end().is_empty() || line.starts_with('#') {
                continue;
            }
            assert!(parse_line(line).is_some(), "rendered unparseable sample line {line:?}");
        }
    }

    #[test]
    fn parse_line_accepts_samples_and_skips_everything_else() {
        // Well-formed samples, with and without labels.
        let s = parse_line("dlfm_ops_total{op=\"link\"} 9").unwrap();
        assert_eq!(
            s,
            Sample { name: "dlfm_ops_total".into(), labels: "{op=\"link\"}".into(), value: 9.0 }
        );
        let s = parse_line("rpc_in_flight 3").unwrap();
        assert_eq!(s.name, "rpc_in_flight");
        assert!(s.labels.is_empty());
        let s = parse_line("op_latency_micros_bucket{op=\"link\",le=\"+Inf\"} 4").unwrap();
        assert_eq!(s.value, 4.0);

        // Comments, blanks, and malformed lines are skipped, not panicked on.
        assert_eq!(parse_line("# HELP dlfm_ops_total Ops by kind."), None);
        assert_eq!(parse_line("# TYPE op_latency_micros histogram"), None);
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("   "), None);
        assert_eq!(parse_line("lonely_token_without_a_value"), None);
        assert_eq!(parse_line("dlfm_ops_total not_a_number"), None);
        assert_eq!(parse_line("bad-metric-name 1"), None);
        assert_eq!(parse_line("unbalanced{op=\"link\" 1"), None);
    }

    #[test]
    fn parse_samples_survives_a_mixed_scrape() {
        let text = "# HELP dlfm_links_total Files linked.\n\
                    # TYPE dlfm_links_total counter\n\
                    dlfm_links_total 17\n\
                    \n\
                    garbage_line_without_value\n\
                    op_latency_micros_bucket{le=\"10\"} 1\n\
                    op_latency_micros_sum 505055\n";
        let samples = parse_samples(text);
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "dlfm_links_total");
        assert_eq!(samples[0].value, 17.0);
        assert_eq!(samples[1].labels, "{le=\"10\"}");
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let h = Histogram::new();
        for v in [5u64, 50, 5_000, 500_000] {
            h.record(v);
        }
        let mut r = Registry::new();
        r.counter("dlfm_links_total", "Files linked.", &[], 17);
        r.counter("dlfm_ops_total", "Ops by kind.", &[("op", "link")], 9);
        r.counter("dlfm_ops_total", "Ops by kind.", &[("op", "unlink")], 8);
        r.gauge("rpc_in_flight", "Calls in flight.", &[], 3);
        r.histogram("op_latency_micros", "Latency.", &[("op", "link")], &h);
        let text = r.render();

        assert_parseable(&text);
        // Headers appear exactly once per family.
        assert_eq!(text.matches("# TYPE dlfm_ops_total counter").count(), 1);
        assert!(text.contains("dlfm_ops_total{op=\"link\"} 9"));
        assert!(text.contains("dlfm_ops_total{op=\"unlink\"} 8"));
        assert!(text.contains("rpc_in_flight 3"));
        // Histogram: cumulative buckets, +Inf equals count.
        assert!(text.contains("op_latency_micros_bucket{op=\"link\",le=\"10\"} 1"));
        assert!(text.contains("op_latency_micros_bucket{op=\"link\",le=\"+Inf\"} 4"));
        assert!(text.contains("op_latency_micros_count{op=\"link\"} 4"));
        assert!(text.contains("op_latency_micros_sum{op=\"link\"} 505055"));
    }

    #[test]
    fn le_buckets_are_cumulative_and_monotonic() {
        let h = Histogram::new();
        for v in 0..10_000u64 {
            h.record(v * 13);
        }
        let mut prev = 0;
        for le in LE_BOUNDS {
            let c = h.count_at_or_below(le);
            assert!(c >= prev, "bucket counts must be cumulative");
            prev = c;
        }
        assert!(h.count() >= prev);
    }
}
