//! Continuous telemetry: a health watchdog over metrics time-series.
//!
//! Everything else in `obs` is *point-in-time*: a metrics scrape, a status
//! page, a journal dump. This module watches those surfaces **over time**:
//!
//! * a background **sampler** thread scrapes named snapshot providers
//!   (anything that renders Prometheus text — `DlfmServer::metrics_text`,
//!   `HostDb::metrics_text`, a raw `minidb` database) at a configurable
//!   interval into a bounded in-memory [`TimePoint`] ring;
//! * per-interval **rates and deltas** are derived from consecutive
//!   samples, including per-interval histogram quantiles reconstructed
//!   from cumulative `_bucket{le="..."}` series (lock-wait p99, force
//!   batch sizes) — the numbers `dlfmtop --watch` renders;
//! * declarative **health rules** ([`Rule`]) — threshold, rate-of-change,
//!   stall ("WAL forces flat while commits are queued"), and interval
//!   quantile — are evaluated against the ring on every sample;
//! * on breach the watchdog journals a structured alert
//!   ([`crate::journal::JournalKind::Alert`]), bumps
//!   `obs_watch_alerts_total`, and writes a self-contained **incident
//!   bundle**: the time-series window, every registered status section,
//!   a flight-recorder dump, and a Perfetto trace — a complete postmortem
//!   with zero operator action.
//!
//! The watchdog knows nothing about the layers it watches: providers and
//! status sections are plain `Fn() -> String` closures, and rules address
//! metrics by their exposition name (optionally qualified by provider, as
//! `provider:name{labels}`). Process self-metrics (RSS, thread count,
//! uptime) are exported by [`render_process_metrics`] so rules can catch
//! memory growth.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::registry::{parse_samples, Registry};
use crate::warn;

// ---------------------------------------------------------------------------
// Global counters (rendered into every layer's metrics_text).

static ALERTS_TOTAL: AtomicU64 = AtomicU64::new(0);
static SAMPLES_TOTAL: AtomicU64 = AtomicU64::new(0);
static BUNDLES_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Health-rule alerts fired by any watchdog in this process.
pub fn alerts_total() -> u64 {
    ALERTS_TOTAL.load(Ordering::Relaxed)
}

/// Samples taken by any watchdog in this process.
pub fn samples_total() -> u64 {
    SAMPLES_TOTAL.load(Ordering::Relaxed)
}

/// Incident bundles written by any watchdog in this process.
pub fn bundles_total() -> u64 {
    BUNDLES_TOTAL.load(Ordering::Relaxed)
}

/// Render the process-wide watchdog counters into a registry.
pub fn render_watch_metrics(r: &mut Registry) {
    r.counter(
        "obs_watch_alerts_total",
        "Health-rule alerts fired by the telemetry watchdog.",
        &[],
        alerts_total(),
    );
    r.counter(
        "obs_watch_samples_total",
        "Metrics samples taken by the telemetry watchdog.",
        &[],
        samples_total(),
    );
    r.counter(
        "obs_watch_bundles_total",
        "Incident bundles written by the telemetry watchdog.",
        &[],
        bundles_total(),
    );
}

// ---------------------------------------------------------------------------
// Process self-metrics.

/// Point-in-time process statistics from `/proc/self`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcSelf {
    /// Resident set size in bytes (0 when `/proc` is unavailable).
    pub rss_bytes: u64,
    /// Thread count (0 when `/proc` is unavailable).
    pub threads: u64,
}

/// Read RSS and thread count from `/proc/self/status`. Returns zeros on
/// platforms without procfs rather than failing — watchdog rules treat 0
/// as "unknown", and thresholds on growth simply never fire.
pub fn proc_self() -> ProcSelf {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return ProcSelf::default();
    };
    let mut out = ProcSelf::default();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            // "VmRSS:     1234 kB"
            if let Some(kb) = rest.split_whitespace().next().and_then(|v| v.parse::<u64>().ok()) {
                out.rss_bytes = kb * 1024;
            }
        } else if let Some(rest) = line.strip_prefix("Threads:") {
            if let Some(n) = rest.split_whitespace().next().and_then(|v| v.parse::<u64>().ok()) {
                out.threads = n;
            }
        }
    }
    out
}

/// Render process self-metrics (RSS, thread count, uptime) into a
/// registry. Uptime is measured from the first use of the shared
/// observability clock (effectively process start in any instrumented
/// program).
pub fn render_process_metrics(r: &mut Registry) {
    let p = proc_self();
    r.gauge(
        "process_resident_memory_bytes",
        "Resident set size from /proc/self/status (0 when unavailable).",
        &[],
        p.rss_bytes as i64,
    );
    r.gauge(
        "process_threads",
        "Thread count from /proc/self/status (0 when unavailable).",
        &[],
        p.threads as i64,
    );
    r.gauge(
        "process_uptime_seconds",
        "Seconds since the observability clock epoch (process start).",
        &[],
        (crate::journal::now_micros() / 1_000_000) as i64,
    );
}

// ---------------------------------------------------------------------------
// Rules.

/// Comparison operator in a health rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Breach when the observed value is strictly greater than the bound.
    Gt,
    /// Breach when the observed value is at least the bound.
    Ge,
    /// Breach when the observed value is strictly less than the bound.
    Lt,
    /// Breach when the observed value is at most the bound.
    Le,
}

impl Cmp {
    fn holds(self, value: f64, bound: f64) -> bool {
        match self {
            Cmp::Gt => value > bound,
            Cmp::Ge => value >= bound,
            Cmp::Lt => value < bound,
            Cmp::Le => value <= bound,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        }
    }
}

/// What a [`Rule`] checks each sampling interval.
#[derive(Debug, Clone)]
pub enum RuleKind {
    /// The current value of a metric (gauge or counter level) crosses a
    /// bound.
    Threshold {
        /// Metric selector (see [`Rule`] docs for the matching grammar).
        metric: String,
        /// Comparison against `bound`.
        cmp: Cmp,
        /// The bound.
        bound: f64,
    },
    /// The per-second rate of change of a (counter) metric over the last
    /// interval crosses a bound.
    Rate {
        /// Metric selector.
        metric: String,
        /// Comparison against `per_sec`.
        cmp: Cmp,
        /// Rate bound, in metric units per second.
        per_sec: f64,
    },
    /// A progress metric made **no progress** over the interval while a
    /// companion condition held — e.g. "WAL forces flat while commit
    /// senders are queued".
    Stall {
        /// The metric that should be making progress (a counter).
        flat: String,
        /// The companion metric whose condition arms the stall check.
        while_metric: String,
        /// Comparison of `while_metric` against `bound`.
        cmp: Cmp,
        /// Bound for the companion condition.
        bound: f64,
    },
    /// A per-interval histogram quantile, reconstructed from the deltas of
    /// cumulative `<hist>_bucket{le="..."}` series, crosses a bound.
    Quantile {
        /// Histogram family name (without the `_bucket` suffix).
        hist: String,
        /// Quantile in (0, 1], e.g. 0.99.
        q: f64,
        /// Comparison against `bound`.
        cmp: Cmp,
        /// Bound, in the histogram's recorded unit (workspace: micros).
        bound: f64,
    },
    /// One provider's reading of a series is an outlier against the same
    /// series from the **other** providers — the fleet rule: every shard
    /// exports the same metric under its own provider name, and one
    /// shard's commit p99 far above the ring median means that shard is
    /// sick even though no absolute bound was crossed. Needs at least
    /// three providers reporting the series (with two there is no
    /// majority to define "normal").
    Skew {
        /// Bare series selector (no provider prefix), compared across
        /// providers. With `q`, the histogram family name instead.
        metric: String,
        /// `None` compares current values; `Some(q)` compares each
        /// provider's per-interval quantile of histogram `metric`.
        q: Option<f64>,
        /// Breach when the outlier exceeds `factor` × the ring median …
        factor: f64,
        /// … and this absolute floor (so an idle fleet where the median
        /// is ~0 does not alert on noise).
        min: f64,
    },
}

/// One declarative health rule.
///
/// Metric selectors address the sampler's keys, which have the shape
/// `provider:name{labels}`. A selector containing `:` must match the full
/// key exactly; otherwise it matches any provider's series whose
/// `name{labels}` or bare `name` equals the selector. When several series
/// match, the rule breaches if **any** of them does.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Rule name (used in alerts, journal entries, and bundle names).
    pub name: String,
    /// What to check.
    pub kind: RuleKind,
    /// Consecutive breaching intervals required before the alert fires.
    pub intervals: usize,
}

impl Rule {
    /// A threshold rule (fires after one breaching sample).
    pub fn threshold(name: &str, metric: &str, cmp: Cmp, bound: f64) -> Rule {
        Rule {
            name: name.into(),
            kind: RuleKind::Threshold { metric: metric.into(), cmp, bound },
            intervals: 1,
        }
    }

    /// A rate-of-change rule requiring `intervals` consecutive breaches.
    pub fn rate(name: &str, metric: &str, cmp: Cmp, per_sec: f64, intervals: usize) -> Rule {
        Rule {
            name: name.into(),
            kind: RuleKind::Rate { metric: metric.into(), cmp, per_sec },
            intervals,
        }
    }

    /// A stall rule: `flat` made no progress for `intervals` consecutive
    /// intervals while `while_metric cmp bound` held in each of them.
    pub fn stall(
        name: &str,
        flat: &str,
        while_metric: &str,
        cmp: Cmp,
        bound: f64,
        intervals: usize,
    ) -> Rule {
        Rule {
            name: name.into(),
            kind: RuleKind::Stall {
                flat: flat.into(),
                while_metric: while_metric.into(),
                cmp,
                bound,
            },
            intervals,
        }
    }

    /// A per-interval histogram-quantile rule.
    pub fn quantile(
        name: &str,
        hist: &str,
        q: f64,
        cmp: Cmp,
        bound: f64,
        intervals: usize,
    ) -> Rule {
        Rule {
            name: name.into(),
            kind: RuleKind::Quantile { hist: hist.into(), q, cmp, bound },
            intervals,
        }
    }

    /// A cross-provider skew rule on current values: fires when one
    /// provider's reading exceeds `factor` × the median across providers
    /// and the absolute floor `min`.
    pub fn skew(name: &str, metric: &str, factor: f64, min: f64, intervals: usize) -> Rule {
        Rule {
            name: name.into(),
            kind: RuleKind::Skew { metric: metric.into(), q: None, factor, min },
            intervals,
        }
    }

    /// A cross-provider skew rule on per-interval histogram quantiles:
    /// fires when one provider's interval p`q` of `hist` exceeds
    /// `factor` × the median across providers and the floor `min`.
    pub fn skew_quantile(
        name: &str,
        hist: &str,
        q: f64,
        factor: f64,
        min: f64,
        intervals: usize,
    ) -> Rule {
        Rule {
            name: name.into(),
            kind: RuleKind::Skew { metric: hist.into(), q: Some(q), factor, min },
            intervals,
        }
    }
}

/// Does a rule's metric selector match a sampled key (`provider:rest`)?
fn selector_matches(selector: &str, key: &str) -> bool {
    if selector.contains(':') {
        return selector == key;
    }
    let Some((_provider, rest)) = key.split_once(':') else { return false };
    if selector == rest {
        return true;
    }
    // Bare family name, label-agnostic.
    let name = rest.split('{').next().unwrap_or(rest);
    selector == name
}

// ---------------------------------------------------------------------------
// Configuration.

/// Watchdog configuration. Providers, sections, and the spawn itself live
/// on [`Watchdog`]; this is the clonable part that can sit in a server
/// config struct.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Sampling interval.
    pub interval: Duration,
    /// Samples retained in the in-memory ring.
    pub capacity: usize,
    /// Directory incident bundles are written under (`None` disables
    /// bundle writing; alerts are still journaled and counted).
    pub bundle_dir: Option<PathBuf>,
    /// At most this many bundles per watchdog (an alert storm must not
    /// fill the disk).
    pub max_bundles: u64,
    /// Minimum spacing between bundles.
    pub bundle_cooldown: Duration,
    /// Health rules evaluated on every sample.
    pub rules: Vec<Rule>,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            interval: Duration::from_secs(1),
            capacity: 600,
            bundle_dir: None,
            max_bundles: 8,
            bundle_cooldown: Duration::from_secs(10),
            rules: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Time series.

/// One sample: every provider's parsed metrics at one instant, keyed
/// `provider:name{labels}`.
#[derive(Debug, Clone)]
pub struct TimePoint {
    /// Microseconds since the observability clock epoch.
    pub micros: u64,
    /// Sampled values.
    pub values: BTreeMap<String, f64>,
}

/// Per-interval quantile from the deltas of cumulative bucket series.
///
/// `keys` yields `(le_bound, delta)` pairs for one histogram family,
/// where `delta` is the growth of the cumulative `le`-bucket over the
/// interval. Returns the smallest bound whose cumulative delta covers the
/// requested rank, or `None` when nothing was recorded this interval.
fn quantile_of_deltas(mut buckets: Vec<(f64, f64)>, q: f64) -> Option<f64> {
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let total = buckets.iter().map(|(_, d)| *d).fold(0.0f64, f64::max);
    if total <= 0.0 {
        return None;
    }
    let rank = (q.clamp(0.0, 1.0) * total).max(1.0);
    let mut best_finite = 0.0f64;
    for (le, delta) in &buckets {
        if le.is_finite() {
            best_finite = *le;
        }
        if *delta + 1e-9 >= rank {
            return Some(if le.is_finite() { *le } else { best_finite });
        }
    }
    Some(best_finite)
}

/// Parse the `le="..."` bound out of a rendered label block.
fn parse_le(labels: &str) -> Option<f64> {
    let start = labels.find("le=\"")? + 4;
    let end = labels[start..].find('"')? + start;
    let raw = &labels[start..end];
    if raw == "+Inf" {
        Some(f64::INFINITY)
    } else {
        raw.parse().ok()
    }
}

/// Collect `(group, le, delta)` bucket deltas for a histogram family
/// matching `hist` between two points. Groups are the key with the `le`
/// label erased, so labeled families (e.g. per-op histograms) are handled
/// per label-set.
fn bucket_deltas(
    hist: &str,
    prev: &TimePoint,
    cur: &TimePoint,
) -> BTreeMap<String, Vec<(f64, f64)>> {
    let (sel_provider, sel_name) = match hist.split_once(':') {
        Some((p, n)) => (Some(p), n),
        None => (None, hist),
    };
    let want = format!("{sel_name}_bucket");
    let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (key, cur_v) in &cur.values {
        let Some((provider, rest)) = key.split_once(':') else { continue };
        if sel_provider.is_some_and(|p| p != provider) {
            continue;
        }
        let name = rest.split('{').next().unwrap_or(rest);
        if name != want {
            continue;
        }
        let labels = &rest[name.len()..];
        let Some(le) = parse_le(labels) else { continue };
        let Some(prev_v) = prev.values.get(key) else { continue };
        let delta = cur_v - prev_v;
        // Group id: the key minus the le label, so per-label families
        // stay separate.
        let group = format!("{provider}:{name}");
        let extra: String = labels
            .trim_start_matches('{')
            .trim_end_matches('}')
            .split(',')
            .filter(|kv| !kv.starts_with("le="))
            .collect::<Vec<_>>()
            .join(",");
        let group = if extra.is_empty() { group } else { format!("{group}{{{extra}}}") };
        groups.entry(group).or_default().push((le, delta));
    }
    groups
}

// ---------------------------------------------------------------------------
// The watchdog.

type TextFn = Box<dyn Fn() -> String + Send + Sync>;

struct RuleState {
    consecutive: usize,
    latched: bool,
}

struct State {
    ring: VecDeque<TimePoint>,
    rules: Vec<RuleState>,
    last_bundle: Option<Instant>,
    bundles_written: u64,
}

struct Inner {
    config: WatchConfig,
    providers: Vec<(String, TextFn)>,
    sections: Vec<(String, TextFn)>,
    state: Mutex<State>,
    alerts: AtomicU64,
    samples: AtomicU64,
    stop: Mutex<bool>,
    cv: Condvar,
}

/// Builder for a watchdog: register snapshot providers and status
/// sections, then [`spawn`](Watchdog::spawn) the sampler thread (or
/// [`manual`](Watchdog::manual) for deterministically driven tests).
pub struct Watchdog {
    config: WatchConfig,
    providers: Vec<(String, TextFn)>,
    sections: Vec<(String, TextFn)>,
}

impl Watchdog {
    /// Start building a watchdog with the given configuration.
    pub fn new(config: WatchConfig) -> Watchdog {
        Watchdog { config, providers: Vec::new(), sections: Vec::new() }
    }

    /// Register a metrics snapshot provider. `name` becomes the key
    /// prefix (`name:metric{labels}`) every sampled series carries.
    pub fn provider(
        mut self,
        name: &str,
        f: impl Fn() -> String + Send + Sync + 'static,
    ) -> Watchdog {
        self.providers.push((name.to_string(), Box::new(f)));
        self
    }

    /// Register a status section rendered into incident bundles as
    /// `<name>.txt` (status pages, forensic summaries).
    pub fn section(
        mut self,
        name: &str,
        f: impl Fn() -> String + Send + Sync + 'static,
    ) -> Watchdog {
        self.sections.push((name.to_string(), Box::new(f)));
        self
    }

    /// Append one health rule.
    pub fn rule(mut self, rule: Rule) -> Watchdog {
        self.config.rules.push(rule);
        self
    }

    fn into_inner(self) -> Arc<Inner> {
        let rules = self.config.rules.iter().map(|_| RuleState { consecutive: 0, latched: false });
        Arc::new(Inner {
            state: Mutex::new(State {
                ring: VecDeque::new(),
                rules: rules.collect(),
                last_bundle: None,
                bundles_written: 0,
            }),
            providers: self.providers,
            sections: self.sections,
            config: self.config,
            alerts: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            stop: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    /// Spawn the background sampler thread and return its handle. The
    /// first sample is taken immediately.
    pub fn spawn(self) -> WatchdogHandle {
        let inner = self.into_inner();
        let thread_inner = inner.clone();
        let thread = std::thread::Builder::new()
            .name("obs-watch".into())
            .spawn(move || loop {
                sample_once(&thread_inner);
                let interval = thread_inner.config.interval;
                let deadline = Instant::now() + interval;
                let mut stopped = thread_inner.stop.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if *stopped {
                        return;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (g, _) = thread_inner
                        .cv
                        .wait_timeout(stopped, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = g;
                }
            })
            .expect("spawning the watchdog sampler thread cannot fail");
        WatchdogHandle { inner, thread: Some(thread) }
    }

    /// Build the watchdog **without** a sampler thread; tests drive it
    /// deterministically with [`WatchdogHandle::sample_now`].
    pub fn manual(self) -> WatchdogHandle {
        WatchdogHandle { inner: self.into_inner(), thread: None }
    }
}

/// Handle to a running (or manually driven) watchdog. Dropping the handle
/// stops the sampler thread.
pub struct WatchdogHandle {
    inner: Arc<Inner>,
    thread: Option<JoinHandle<()>>,
}

impl WatchdogHandle {
    /// Stop the sampler thread and join it (idempotent).
    pub fn stop(&mut self) {
        *self.inner.stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.inner.cv.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Take one sample right now (manual mode and tests; safe alongside
    /// the sampler thread).
    pub fn sample_now(&self) {
        sample_once(&self.inner);
    }

    /// Alerts fired by this watchdog.
    pub fn alerts(&self) -> u64 {
        self.inner.alerts.load(Ordering::Relaxed)
    }

    /// Samples taken by this watchdog.
    pub fn samples(&self) -> u64 {
        self.inner.samples.load(Ordering::Relaxed)
    }

    /// Incident bundles written by this watchdog.
    pub fn bundles(&self) -> u64 {
        self.inner.state.lock().unwrap_or_else(|e| e.into_inner()).bundles_written
    }

    /// Snapshot of the buffered time-series window, oldest first.
    pub fn points(&self) -> Vec<TimePoint> {
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.ring.iter().cloned().collect()
    }

    /// Per-second rate of a metric over the last interval. The selector
    /// follows the [`Rule`] grammar; the first matching series wins.
    pub fn rate(&self, selector: &str) -> Option<f64> {
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let (prev, cur) = last_two(&state.ring)?;
        let dt = interval_secs(prev, cur)?;
        for (key, cur_v) in &cur.values {
            if selector_matches(selector, key) {
                if let Some(prev_v) = prev.values.get(key) {
                    return Some((cur_v - prev_v) / dt);
                }
            }
        }
        None
    }

    /// Per-interval quantile of a histogram family over the last
    /// interval (worst matching label-set/provider when several match).
    pub fn interval_quantile(&self, hist: &str, q: f64) -> Option<f64> {
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let (prev, cur) = last_two(&state.ring)?;
        bucket_deltas(hist, prev, cur)
            .into_values()
            .filter_map(|b| quantile_of_deltas(b, q))
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Render the last interval's rates and deltas as an aligned text
    /// table — what `dlfmtop --watch` refreshes. Counters that did not
    /// move are omitted; per-interval histogram quantiles are appended.
    pub fn rates_text(&self) -> String {
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let Some((prev, cur)) = last_two(&state.ring) else {
            out.push_str("watch: waiting for a second sample\n");
            return out;
        };
        let Some(dt) = interval_secs(prev, cur) else {
            out.push_str("watch: zero-length interval\n");
            return out;
        };
        out.push_str(&format!(
            "== watch: interval {:.3}s, {} series, sample #{} ==\n",
            dt,
            cur.values.len(),
            state.ring.len(),
        ));
        for (key, cur_v) in &cur.values {
            // Bucket series are summarized as quantiles below.
            if key.contains("_bucket{") {
                continue;
            }
            let Some(prev_v) = prev.values.get(key) else { continue };
            let delta = cur_v - prev_v;
            if delta == 0.0 {
                continue;
            }
            out.push_str(&format!(
                "{key:<58} {cur_v:>14.0}  Δ{delta:>+10.0}  {:>10.1}/s\n",
                delta / dt
            ));
        }
        // Per-interval histogram quantiles, one line per active family.
        let mut families: Vec<String> = cur
            .values
            .keys()
            .filter_map(|k| {
                let (provider, rest) = k.split_once(':')?;
                let name = rest.split('{').next()?;
                name.strip_suffix("_bucket").map(|base| format!("{provider}:{base}"))
            })
            .collect();
        families.sort();
        families.dedup();
        for fam in families {
            let deltas = bucket_deltas(&fam, prev, cur);
            for (group, buckets) in deltas {
                let total: f64 = buckets.iter().map(|(_, d)| *d).fold(0.0, f64::max);
                if total <= 0.0 {
                    continue;
                }
                let p50 = quantile_of_deltas(buckets.clone(), 0.50).unwrap_or(0.0);
                let p99 = quantile_of_deltas(buckets, 0.99).unwrap_or(0.0);
                out.push_str(&format!(
                    "{group:<58} interval p50<={p50:<10.0} p99<={p99:<10.0} n={total:.0}\n"
                ));
            }
        }
        out
    }
}

impl Drop for WatchdogHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn last_two(ring: &VecDeque<TimePoint>) -> Option<(&TimePoint, &TimePoint)> {
    if ring.len() < 2 {
        return None;
    }
    Some((ring.get(ring.len() - 2)?, ring.back()?))
}

fn interval_secs(prev: &TimePoint, cur: &TimePoint) -> Option<f64> {
    let dt = cur.micros.saturating_sub(prev.micros) as f64 / 1_000_000.0;
    if dt > 0.0 {
        Some(dt)
    } else {
        None
    }
}

struct Alert {
    rule: String,
    detail: String,
}

/// Scrape every provider, push the sample, evaluate the rules, and handle
/// any alerts (journal + counters + incident bundle).
fn sample_once(inner: &Inner) {
    let mut values = BTreeMap::new();
    for (name, f) in &inner.providers {
        for s in parse_samples(&f()) {
            values.insert(format!("{name}:{}{}", s.name, s.labels), s.value);
        }
    }
    let point = TimePoint { micros: crate::journal::now_micros(), values };

    let (alerts, window) = {
        let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.ring.push_back(point);
        while state.ring.len() > inner.config.capacity.max(1) {
            state.ring.pop_front();
        }
        let alerts = evaluate(&mut state, &inner.config);
        // Clone the window only when something fired (bundles need it).
        let window: Vec<TimePoint> =
            if alerts.is_empty() { Vec::new() } else { state.ring.iter().cloned().collect() };
        (alerts, window)
    };
    inner.samples.fetch_add(1, Ordering::Relaxed);
    SAMPLES_TOTAL.fetch_add(1, Ordering::Relaxed);

    for alert in alerts {
        inner.alerts.fetch_add(1, Ordering::Relaxed);
        ALERTS_TOTAL.fetch_add(1, Ordering::Relaxed);
        warn!("obs::watch", "health alert [{}]: {}", alert.rule, alert.detail);
        let detail = alert.detail.clone();
        let rule = alert.rule.clone();
        crate::journal::record(crate::journal::JournalKind::Alert, 0, move || {
            format!("rule {rule}: {detail}")
        });
        write_bundle(inner, &alert, &window);
    }
}

/// Evaluate every rule against the ring; returns the alerts that fired
/// this tick. Rules latch while they keep breaching and re-arm once the
/// condition clears, so one continuous episode produces one alert.
fn evaluate(state: &mut State, config: &WatchConfig) -> Vec<Alert> {
    let mut out = Vec::new();
    let cur = match state.ring.back() {
        Some(c) => c.clone(),
        None => return out,
    };
    let prev =
        if state.ring.len() >= 2 { state.ring.get(state.ring.len() - 2).cloned() } else { None };
    for (i, rule) in config.rules.iter().enumerate() {
        let breach = check_rule(rule, prev.as_ref(), &cur);
        let st = &mut state.rules[i];
        match breach {
            Some(detail) => {
                st.consecutive += 1;
                if st.consecutive >= rule.intervals.max(1) && !st.latched {
                    st.latched = true;
                    out.push(Alert { rule: rule.name.clone(), detail });
                }
            }
            None => {
                st.consecutive = 0;
                st.latched = false;
            }
        }
    }
    out
}

fn check_rule(rule: &Rule, prev: Option<&TimePoint>, cur: &TimePoint) -> Option<String> {
    match &rule.kind {
        RuleKind::Threshold { metric, cmp, bound } => {
            for (key, v) in &cur.values {
                if selector_matches(metric, key) && cmp.holds(*v, *bound) {
                    return Some(format!("{key} = {v} {} {bound}", cmp.symbol()));
                }
            }
            None
        }
        RuleKind::Rate { metric, cmp, per_sec } => {
            let prev = prev?;
            let dt = interval_secs(prev, cur)?;
            for (key, cur_v) in &cur.values {
                if !selector_matches(metric, key) {
                    continue;
                }
                let Some(prev_v) = prev.values.get(key) else { continue };
                let rate = (cur_v - prev_v) / dt;
                if cmp.holds(rate, *per_sec) {
                    return Some(format!(
                        "{key} rate {rate:.1}/s {} {per_sec}/s over {dt:.3}s",
                        cmp.symbol()
                    ));
                }
            }
            None
        }
        RuleKind::Stall { flat, while_metric, cmp, bound } => {
            let prev = prev?;
            // Progress check: every matching series must be flat, and at
            // least one must exist.
            let mut saw_flat = false;
            for (key, cur_v) in &cur.values {
                if !selector_matches(flat, key) {
                    continue;
                }
                let Some(prev_v) = prev.values.get(key) else { continue };
                if (cur_v - prev_v).abs() > 1e-9 {
                    return None; // progress was made
                }
                saw_flat = true;
            }
            if !saw_flat {
                return None;
            }
            for (key, v) in &cur.values {
                if selector_matches(while_metric, key) && cmp.holds(*v, *bound) {
                    return Some(format!("{flat} flat while {key} = {v} {} {bound}", cmp.symbol()));
                }
            }
            None
        }
        RuleKind::Quantile { hist, q, cmp, bound } => {
            let prev = prev?;
            for (group, buckets) in bucket_deltas(hist, prev, cur) {
                let Some(value) = quantile_of_deltas(buckets, *q) else { continue };
                if cmp.holds(value, *bound) {
                    return Some(format!(
                        "{group} interval p{:.0} <= {value} {} {bound}",
                        q * 100.0,
                        cmp.symbol()
                    ));
                }
            }
            None
        }
        RuleKind::Skew { metric, q, factor, min } => {
            // One observation per provider: its worst matching series.
            let mut per_provider: BTreeMap<String, f64> = BTreeMap::new();
            match q {
                None => {
                    for (key, v) in &cur.values {
                        if !selector_matches(metric, key) {
                            continue;
                        }
                        let Some((provider, _)) = key.split_once(':') else { continue };
                        let slot = per_provider.entry(provider.to_string()).or_insert(f64::MIN);
                        *slot = slot.max(*v);
                    }
                }
                Some(q) => {
                    let prev = prev?;
                    for (group, buckets) in bucket_deltas(metric, prev, cur) {
                        let Some(v) = quantile_of_deltas(buckets, *q) else { continue };
                        let Some((provider, _)) = group.split_once(':') else { continue };
                        let slot = per_provider.entry(provider.to_string()).or_insert(f64::MIN);
                        *slot = slot.max(v);
                    }
                }
            }
            if per_provider.len() < 3 {
                return None;
            }
            let mut sorted: Vec<f64> = per_provider.values().copied().collect();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let mid = sorted.len() / 2;
            let median = if sorted.len() % 2 == 1 {
                sorted[mid]
            } else {
                (sorted[mid - 1] + sorted[mid]) / 2.0
            };
            let (worst, v) = per_provider
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
            if *v > factor * median && *v > *min {
                let what = match q {
                    Some(q) => format!("interval p{:.0} of {metric}", q * 100.0),
                    None => metric.clone(),
                };
                return Some(format!(
                    "{worst}: {what} = {v:.0} > {factor}x ring median {median:.0} \
                     ({} providers)",
                    per_provider.len()
                ));
            }
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Incident bundles.

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render a time-series window as a self-contained JSON document.
pub fn timeseries_json(points: &[TimePoint], interval: Duration) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"interval_micros\": {},\n  \"points\": [\n",
        interval.as_micros()
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!("    {{\"micros\": {}, \"values\": {{", p.micros));
        for (j, (k, v)) in p.values.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", json_escape(k), json_num(*v)));
        }
        out.push_str(if i + 1 < points.len() { "}},\n" } else { "}}\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '-' })
        .collect()
}

/// Write a self-contained incident bundle for one alert: the time-series
/// window, every registered status section, a flight-recorder dump, and a
/// Perfetto trace. Failures are logged, never fatal — the watchdog must
/// not take the server down while reporting that something is wrong.
fn write_bundle(inner: &Inner, alert: &Alert, window: &[TimePoint]) {
    let Some(root) = &inner.config.bundle_dir else { return };
    {
        let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.bundles_written >= inner.config.max_bundles {
            return;
        }
        if let Some(last) = state.last_bundle {
            if last.elapsed() < inner.config.bundle_cooldown {
                return;
            }
        }
        state.bundles_written += 1;
        state.last_bundle = Some(Instant::now());
    }
    let seq = BUNDLES_TOTAL.fetch_add(1, Ordering::Relaxed);
    let dir = root.join(format!("incident-{seq:04}-{}", sanitize(&alert.rule)));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        warn!("obs::watch", "cannot create incident bundle dir {}: {e}", dir.display());
        return;
    }
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let alert_text = format!(
        "rule: {}\ndetail: {}\nunix_time: {unix_secs}\nuptime_micros: {}\n",
        alert.rule,
        alert.detail,
        crate::journal::now_micros(),
    );
    let mut files: Vec<(String, String)> = vec![
        ("alert.txt".into(), alert_text),
        ("timeseries.json".into(), timeseries_json(window, inner.config.interval)),
        ("journal.txt".into(), crate::journal::dump_string()),
        ("trace.json".into(), crate::export::export_chrome_trace()),
    ];
    for (name, f) in &inner.sections {
        files.push((format!("{}.txt", sanitize(name)), f()));
    }
    for (name, content) in files {
        if let Err(e) = std::fs::write(dir.join(&name), content) {
            warn!("obs::watch", "cannot write bundle file {name}: {e}");
        }
    }
    warn!("obs::watch", "incident bundle written to {}", dir.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// A scriptable provider: each call renders the current counter
    /// values as exposition text.
    #[derive(Clone, Default)]
    struct Script(Arc<StdMutex<BTreeMap<String, f64>>>);

    impl Script {
        fn set(&self, name: &str, v: f64) {
            self.0.lock().unwrap().insert(name.to_string(), v);
        }

        fn provider(&self) -> impl Fn() -> String + Send + Sync + 'static {
            let inner = self.0.clone();
            move || {
                let mut out = String::new();
                for (k, v) in inner.lock().unwrap().iter() {
                    out.push_str(&format!("{k} {v}\n"));
                }
                out
            }
        }
    }

    fn manual_watch(script: &Script, rules: Vec<Rule>) -> WatchdogHandle {
        let config =
            WatchConfig { interval: Duration::from_millis(10), rules, ..Default::default() };
        Watchdog::new(config).provider("t", script.provider()).manual()
    }

    #[test]
    fn selector_grammar() {
        assert!(selector_matches("foo_total", "dlfm:foo_total"));
        assert!(selector_matches("foo_total", "host:foo_total"));
        assert!(selector_matches("dlfm:foo_total", "dlfm:foo_total"));
        assert!(!selector_matches("dlfm:foo_total", "host:foo_total"));
        assert!(selector_matches("foo_total", "dlfm:foo_total{op=\"link\"}"));
        assert!(selector_matches("foo_total{op=\"link\"}", "dlfm:foo_total{op=\"link\"}"));
        assert!(!selector_matches("foo_total{op=\"link\"}", "dlfm:foo_total{op=\"unlink\"}"));
        assert!(!selector_matches("foo", "dlfm:foo_total"));
    }

    #[test]
    fn threshold_fires_once_and_rearms() {
        let s = Script::default();
        s.set("depth", 1.0);
        let w = manual_watch(&s, vec![Rule::threshold("deep", "depth", Cmp::Gt, 5.0)]);
        w.sample_now();
        assert_eq!(w.alerts(), 0);
        s.set("depth", 9.0);
        w.sample_now();
        assert_eq!(w.alerts(), 1, "breach fires");
        w.sample_now();
        assert_eq!(w.alerts(), 1, "latched while still breaching");
        s.set("depth", 0.0);
        w.sample_now();
        s.set("depth", 9.0);
        w.sample_now();
        assert_eq!(w.alerts(), 2, "re-arms after the condition clears");
    }

    #[test]
    fn rate_rule_needs_consecutive_breaches() {
        let s = Script::default();
        s.set("retries_total", 0.0);
        let w = manual_watch(&s, vec![Rule::rate("storm", "retries_total", Cmp::Gt, 1.0, 2)]);
        w.sample_now();
        std::thread::sleep(Duration::from_millis(2));
        s.set("retries_total", 1000.0);
        w.sample_now();
        assert_eq!(w.alerts(), 0, "one breaching interval is not enough");
        std::thread::sleep(Duration::from_millis(2));
        s.set("retries_total", 2000.0);
        w.sample_now();
        assert_eq!(w.alerts(), 1, "two consecutive breaching intervals fire");
        assert!(w.rate("retries_total").unwrap() > 1.0);
    }

    #[test]
    fn stall_rule_flat_while_condition_holds() {
        let s = Script::default();
        s.set("forces_total", 10.0);
        s.set("queued", 3.0);
        let w = manual_watch(
            &s,
            vec![Rule::stall("wal-stall", "forces_total", "queued", Cmp::Gt, 0.0, 2)],
        );
        w.sample_now();
        std::thread::sleep(Duration::from_millis(2));
        w.sample_now(); // flat + queued: 1st breach
        assert_eq!(w.alerts(), 0);
        std::thread::sleep(Duration::from_millis(2));
        w.sample_now(); // 2nd consecutive breach
        assert_eq!(w.alerts(), 1);
        // Progress resets the streak even while the condition holds.
        s.set("forces_total", 11.0);
        std::thread::sleep(Duration::from_millis(2));
        w.sample_now();
        std::thread::sleep(Duration::from_millis(2));
        w.sample_now();
        assert_eq!(w.alerts(), 1, "flat again for only one interval: no new alert");
    }

    #[test]
    fn skew_rule_flags_the_outlier_shard() {
        let shards: Vec<Script> = (0..3).map(|_| Script::default()).collect();
        for s in &shards {
            s.set("lock_waiting", 1.0);
        }
        let config = WatchConfig {
            interval: Duration::from_millis(10),
            rules: vec![Rule::skew("shard-skew", "lock_waiting", 3.0, 5.0, 1)],
            ..Default::default()
        };
        let w = Watchdog::new(config)
            .provider("shard0", shards[0].provider())
            .provider("shard1", shards[1].provider())
            .provider("shard2", shards[2].provider())
            .manual();
        w.sample_now();
        assert_eq!(w.alerts(), 0, "uniform fleet is healthy");
        // One shard 10x the ring median, but under the absolute floor.
        shards[2].set("lock_waiting", 4.0);
        w.sample_now();
        assert_eq!(w.alerts(), 0, "below the min floor");
        shards[2].set("lock_waiting", 40.0);
        w.sample_now();
        assert_eq!(w.alerts(), 1, "shard2 is a 40x outlier");
    }

    #[test]
    fn skew_rule_needs_three_providers() {
        let a = Script::default();
        let b = Script::default();
        a.set("depth", 1.0);
        b.set("depth", 100.0);
        let config = WatchConfig {
            interval: Duration::from_millis(10),
            rules: vec![Rule::skew("skew", "depth", 2.0, 0.0, 1)],
            ..Default::default()
        };
        let w =
            Watchdog::new(config).provider("a", a.provider()).provider("b", b.provider()).manual();
        w.sample_now();
        assert_eq!(w.alerts(), 0, "two providers cannot define a ring median");
    }

    #[test]
    fn skew_quantile_rule_compares_interval_p99_across_shards() {
        let shards: Vec<Script> = (0..3).map(|_| Script::default()).collect();
        for s in &shards {
            s.set("commit_micros_bucket{le=\"1000\"}", 0.0);
            s.set("commit_micros_bucket{le=\"1000000\"}", 0.0);
            s.set("commit_micros_bucket{le=\"+Inf\"}", 0.0);
        }
        let config = WatchConfig {
            interval: Duration::from_millis(10),
            rules: vec![Rule::skew_quantile(
                "commit-skew",
                "commit_micros",
                0.99,
                4.0,
                10_000.0,
                1,
            )],
            ..Default::default()
        };
        let w = Watchdog::new(config)
            .provider("shard0", shards[0].provider())
            .provider("shard1", shards[1].provider())
            .provider("shard2", shards[2].provider())
            .manual();
        w.sample_now();
        std::thread::sleep(Duration::from_millis(2));
        // All shards commit fast this interval.
        for s in &shards {
            s.set("commit_micros_bucket{le=\"1000\"}", 50.0);
            s.set("commit_micros_bucket{le=\"1000000\"}", 50.0);
            s.set("commit_micros_bucket{le=\"+Inf\"}", 50.0);
        }
        w.sample_now();
        assert_eq!(w.alerts(), 0, "uniform p99 across the ring");
        std::thread::sleep(Duration::from_millis(2));
        // shard1's commits land above 1ms this interval; the others stay fast.
        for (i, s) in shards.iter().enumerate() {
            let (fast, slow) = if i == 1 { (50.0, 100.0) } else { (100.0, 100.0) };
            s.set("commit_micros_bucket{le=\"1000\"}", fast);
            s.set("commit_micros_bucket{le=\"1000000\"}", slow);
            s.set("commit_micros_bucket{le=\"+Inf\"}", slow);
        }
        w.sample_now();
        assert_eq!(w.alerts(), 1, "shard1's interval p99 skews off the ring");
    }

    #[test]
    fn quantile_rule_reads_bucket_deltas() {
        let s = Script::default();
        // A histogram where the interval's 99 new values land <= 1000us
        // and 1 lands above.
        s.set("lat_bucket{le=\"1000\"}", 0.0);
        s.set("lat_bucket{le=\"100000\"}", 0.0);
        s.set("lat_bucket{le=\"+Inf\"}", 0.0);
        let w = manual_watch(&s, vec![Rule::quantile("p99", "lat", 0.99, Cmp::Gt, 50_000.0, 1)]);
        w.sample_now();
        std::thread::sleep(Duration::from_millis(2));
        s.set("lat_bucket{le=\"1000\"}", 99.0);
        s.set("lat_bucket{le=\"100000\"}", 99.0);
        s.set("lat_bucket{le=\"+Inf\"}", 100.0);
        w.sample_now();
        // p99 rank 99 is covered at le=1000 -> below the bound.
        assert_eq!(w.alerts(), 0);
        assert_eq!(w.interval_quantile("lat", 0.5), Some(1000.0));
        std::thread::sleep(Duration::from_millis(2));
        // Next interval: half the values land above 100ms.
        s.set("lat_bucket{le=\"1000\"}", 109.0);
        s.set("lat_bucket{le=\"100000\"}", 110.0);
        s.set("lat_bucket{le=\"+Inf\"}", 120.0);
        w.sample_now();
        assert_eq!(w.alerts(), 1, "interval p99 above 50ms fires");
    }

    #[test]
    fn bundle_contains_the_full_postmortem() {
        let s = Script::default();
        s.set("depth", 0.0);
        let dir = std::env::temp_dir().join(format!(
            "obs-watch-test-{}-{}",
            std::process::id(),
            crate::journal::now_micros()
        ));
        let config = WatchConfig {
            interval: Duration::from_millis(10),
            bundle_dir: Some(dir.clone()),
            rules: vec![Rule::threshold("deep", "depth", Cmp::Gt, 5.0)],
            ..Default::default()
        };
        let w = Watchdog::new(config)
            .provider("t", s.provider())
            .section("status", || "all systems nominal\n".to_string())
            .manual();
        w.sample_now();
        s.set("depth", 50.0);
        w.sample_now();
        assert_eq!(w.alerts(), 1);
        assert_eq!(w.bundles(), 1);
        let bundle = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .expect("one incident bundle dir")
            .unwrap()
            .path();
        assert!(bundle.file_name().unwrap().to_string_lossy().starts_with("incident-"));
        for name in ["alert.txt", "timeseries.json", "journal.txt", "trace.json", "status.txt"] {
            assert!(bundle.join(name).exists(), "bundle is missing {name}");
        }
        let ts = std::fs::read_to_string(bundle.join("timeseries.json")).unwrap();
        assert!(crate::export::json_is_well_formed(&ts), "timeseries must be valid JSON: {ts}");
        assert!(ts.contains("t:depth"));
        let alert = std::fs::read_to_string(bundle.join("alert.txt")).unwrap();
        assert!(alert.contains("rule: deep"));
        assert!(alert.contains("t:depth = 50"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rates_text_shows_moving_series_only() {
        let s = Script::default();
        s.set("moving_total", 0.0);
        s.set("frozen_total", 7.0);
        let w = manual_watch(&s, vec![]);
        w.sample_now();
        std::thread::sleep(Duration::from_millis(2));
        s.set("moving_total", 42.0);
        w.sample_now();
        let text = w.rates_text();
        assert!(text.contains("t:moving_total"), "{text}");
        assert!(!text.contains("t:frozen_total"), "{text}");
    }

    #[test]
    fn ring_is_bounded() {
        let s = Script::default();
        s.set("x", 1.0);
        let config = WatchConfig { capacity: 3, ..Default::default() };
        let w = Watchdog::new(config).provider("t", s.provider()).manual();
        for _ in 0..10 {
            w.sample_now();
        }
        assert_eq!(w.points().len(), 3);
        assert_eq!(w.samples(), 10);
    }

    #[test]
    fn spawned_sampler_collects_and_stops() {
        let s = Script::default();
        s.set("x", 1.0);
        let config = WatchConfig { interval: Duration::from_millis(5), ..Default::default() };
        let mut w = Watchdog::new(config).provider("t", s.provider()).spawn();
        let deadline = Instant::now() + Duration::from_secs(2);
        while w.samples() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(w.samples() >= 3, "sampler thread must collect on its own");
        w.stop();
        let after = w.samples();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(w.samples(), after, "no samples after stop");
    }

    #[test]
    fn proc_self_reads_procfs() {
        let p = proc_self();
        if cfg!(target_os = "linux") {
            assert!(p.rss_bytes > 0, "RSS must be readable on linux");
            assert!(p.threads >= 1);
        }
    }

    #[test]
    fn process_metrics_render_and_parse() {
        let mut r = Registry::new();
        render_process_metrics(&mut r);
        render_watch_metrics(&mut r);
        let text = r.render();
        for name in [
            "process_resident_memory_bytes",
            "process_threads",
            "process_uptime_seconds",
            "obs_watch_alerts_total",
            "obs_watch_samples_total",
            "obs_watch_bundles_total",
        ] {
            assert!(text.contains(name), "missing {name} in {text}");
        }
        assert!(!parse_samples(&text).is_empty());
    }
}
