//! The flight recorder: a bounded ring of structured events beyond spans.
//!
//! Spans say *how long* things took; the journal says *what happened*:
//! lock waits/grants/timeouts, deadlock victim selection, lock escalation,
//! 2PC sub-transaction state transitions, WAL/coordinator-log forces, pool
//! admission rejects, and every fault-point fire. Each event is stamped
//! with the thread's trace id, a transaction/session id, and monotonic
//! microseconds since process start, so a dump reads as a timeline that
//! joins against the span ring and the logs.
//!
//! The recorder is **disarmed by default**: every [`record`] call is one
//! relaxed atomic load, and the detail closure is never evaluated. Servers
//! and tests [`arm`] it; arming also installs a panic hook that dumps the
//! buffered timeline to stderr, so a crashing process explains itself.
//! With `DLFM_JOURNAL_DUMP` set in the environment, every fault-point fire
//! also triggers a dump — the forensic artifact for a failing fault-matrix
//! seed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

use crate::trace::current_ctx;

/// What kind of thing happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JournalKind {
    /// A transaction started waiting for a lock.
    LockWait,
    /// A waiter was granted its lock (immediate grants are not journaled —
    /// they are too hot and carry no diagnostic signal).
    LockGrant,
    /// A lock wait timed out.
    LockTimeout,
    /// A deadlock cycle was detected and a victim chosen.
    Deadlock,
    /// Fine-grained locks were escalated to a table lock.
    LockEscalation,
    /// A 2PC sub-transaction state transition (in-flight, prepared,
    /// phase-2 attempt/abandon, committed, aborted, presumed abort).
    TwoPc,
    /// A WAL force (simulated fsync) completed.
    WalForce,
    /// A coordinator-log force completed.
    CoordForce,
    /// A request was rejected by pool admission control.
    PoolReject,
    /// An armed fault point fired.
    FaultFire,
    /// A statement ran over the slow-statement threshold.
    SlowStatement,
    /// A telemetry-watchdog health rule fired.
    Alert,
    /// Anything else worth a timeline entry (restart, recovery, …).
    Info,
}

impl JournalKind {
    /// Stable lowercase name (used in dumps, metrics, and trace export).
    pub fn as_str(&self) -> &'static str {
        match self {
            JournalKind::LockWait => "lock_wait",
            JournalKind::LockGrant => "lock_grant",
            JournalKind::LockTimeout => "lock_timeout",
            JournalKind::Deadlock => "deadlock",
            JournalKind::LockEscalation => "lock_escalation",
            JournalKind::TwoPc => "twopc",
            JournalKind::WalForce => "wal_force",
            JournalKind::CoordForce => "coord_force",
            JournalKind::PoolReject => "pool_reject",
            JournalKind::FaultFire => "fault_fire",
            JournalKind::SlowStatement => "slow_statement",
            JournalKind::Alert => "alert",
            JournalKind::Info => "info",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct JournalEvent {
    /// Global record order (monotonic).
    pub seq: u64,
    /// Microseconds since process start (monotonic clock).
    pub micros: u64,
    /// Trace id of the thread's current span, 0 when none was open.
    pub trace_id: u64,
    /// Transaction / session id the event belongs to, 0 when none.
    pub txn: i64,
    /// Event kind.
    pub kind: JournalKind,
    /// Human-readable specifics ("txn3 -> txn5 -> txn3, victim txn5").
    pub detail: String,
}

/// Bounded ring of journal events: same slot-claim design as the span
/// ring (one `fetch_add` plus a short per-slot latch). Overflow overwrites
/// the oldest events and counts the overwrite, so drops are observable.
pub struct JournalRing {
    slots: Box<[Mutex<Option<JournalEvent>>]>,
    next: AtomicU64,
    dropped: AtomicU64,
    drained: AtomicU64,
}

impl JournalRing {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> JournalRing {
        assert!(capacity > 0, "ring capacity must be positive");
        let slots: Vec<Mutex<Option<JournalEvent>>> =
            (0..capacity).map(|_| Mutex::new(None)).collect();
        JournalRing {
            slots: slots.into_boxed_slice(),
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Push one event, overwriting (and counting) the oldest on overflow.
    pub fn push(&self, mut event: JournalEvent) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        let slot = (seq % self.slots.len() as u64) as usize;
        let prev = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner()).replace(event);
        if prev.is_some() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copy every buffered event, oldest first, leaving the ring intact
    /// (dumps and exports must not destroy the evidence they report).
    pub fn snapshot(&self) -> Vec<JournalEvent> {
        let mut out: Vec<JournalEvent> = Vec::new();
        for slot in self.slots.iter() {
            if let Some(ev) = slot.lock().unwrap_or_else(|e| e.into_inner()).clone() {
                out.push(ev);
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Take every buffered event, oldest first, leaving the ring empty.
    pub fn drain(&self) -> Vec<JournalEvent> {
        let mut out: Vec<JournalEvent> = Vec::new();
        for slot in self.slots.iter() {
            if let Some(ev) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                out.push(ev);
            }
        }
        out.sort_by_key(|e| e.seq);
        self.drained.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Events recorded over the ring's lifetime (including overwritten).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Events lost to overflow before anyone drained them.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events taken out via [`JournalRing::drain`].
    pub fn drained(&self) -> u64 {
        self.drained.load(Ordering::Relaxed)
    }
}

/// Capacity of the global journal ring.
pub const JOURNAL_CAPACITY: usize = 16384;

/// Process-wide armed switch: exactly one relaxed load on the disarmed
/// path, mirroring the fault registry's fast path.
static ARMED: AtomicBool = AtomicBool::new(false);

fn ring() -> &'static JournalRing {
    static RING: OnceLock<JournalRing> = OnceLock::new();
    RING.get_or_init(|| JournalRing::new(JOURNAL_CAPACITY))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic microseconds since process start (first use). Shared with
/// the span ring so journal events and spans land on one timeline.
pub fn now_micros() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Arm the flight recorder (idempotent). Also installs the panic-dump
/// hook on first arm, so a panicking armed process dumps its timeline.
pub fn arm() {
    // Touch the epoch first so event timestamps measure from roughly
    // process start rather than from the first recorded event.
    let _ = epoch();
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_to_stderr("panic");
            prev(info);
        }));
    });
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarm the recorder: every later [`record`] is one relaxed load and
/// nothing is evaluated or stored. Buffered events stay readable.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}

/// Is the recorder armed?
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Record one event. When disarmed this is a single relaxed atomic load;
/// the detail closure is only evaluated (and only allocates) when armed.
#[inline]
pub fn record(kind: JournalKind, txn: i64, detail: impl FnOnce() -> String) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    record_slow(kind, txn, detail());
}

#[cold]
fn record_slow(kind: JournalKind, txn: i64, detail: String) {
    ring().push(JournalEvent {
        seq: 0, // assigned by the ring
        micros: now_micros(),
        trace_id: current_ctx().map_or(0, |c| c.trace_id),
        txn,
        kind,
        detail,
    });
}

/// Non-destructive copy of the buffered timeline, oldest first.
pub fn snapshot() -> Vec<JournalEvent> {
    ring().snapshot()
}

/// Take the buffered timeline, leaving the ring empty (tests isolate
/// their window this way).
pub fn drain() -> Vec<JournalEvent> {
    ring().drain()
}

/// Events recorded over the process lifetime (including overwritten).
pub fn recorded() -> u64 {
    ring().recorded()
}

/// Events lost to ring overflow.
pub fn dropped() -> u64 {
    ring().dropped()
}

/// Render one event as a dump line.
fn render_line(e: &JournalEvent, out: &mut String) {
    use std::fmt::Write;
    let _ = write!(out, "{:>12.6}s  {:<15}", e.micros as f64 / 1_000_000.0, e.kind.as_str());
    if e.trace_id != 0 {
        let _ = write!(out, " trace={:016x}", e.trace_id);
    }
    if e.txn != 0 {
        let _ = write!(out, " txn={}", e.txn);
    }
    let _ = writeln!(out, "  {}", e.detail);
}

/// The full buffered timeline as text, oldest first — the "flight
/// recorder dump". Non-destructive.
pub fn dump_string() -> String {
    let events = snapshot();
    let mut out = String::new();
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "=== flight recorder: {} buffered, {} recorded, {} dropped ===",
        events.len(),
        recorded(),
        dropped()
    );
    for e in &events {
        render_line(e, &mut out);
    }
    out
}

/// Dump the timeline to stderr with a reason header. No-op while the ring
/// is empty (an unused recorder stays silent on panic).
pub fn dump_to_stderr(reason: &str) {
    if ring().recorded() == 0 {
        return;
    }
    eprintln!("=== flight recorder dump ({reason}) ===");
    eprint!("{}", dump_string());
}

/// Is `DLFM_JOURNAL_DUMP` set (to anything but `0`)? Cached after the
/// first check.
pub fn env_dump_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("DLFM_JOURNAL_DUMP").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
    })
}

/// Hook called by the fault registry on every fault-point fire: journal
/// the fire, and dump the timeline when `DLFM_JOURNAL_DUMP` asks for it.
pub(crate) fn on_fault_fired(point: &str) {
    record(JournalKind::FaultFire, 0, || format!("fault point {point} fired"));
    if env_dump_enabled() {
        dump_to_stderr(&format!("fault fire: {point}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Armed-state tests share the global ring; serialize them.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_record_evaluates_nothing() {
        let _s = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        disarm();
        let before = recorded();
        record(JournalKind::Info, 1, || panic!("detail must not be evaluated while disarmed"));
        assert_eq!(recorded(), before);
    }

    #[test]
    fn armed_record_lands_in_order_with_stamps() {
        let _s = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        arm();
        drain();
        record(JournalKind::LockWait, 7, || "waiting for row 1".into());
        record(JournalKind::Deadlock, 9, || "txn7 -> txn9 -> txn7".into());
        let events = snapshot();
        disarm();
        let ours: Vec<&JournalEvent> = events.iter().filter(|e| e.txn == 7 || e.txn == 9).collect();
        assert_eq!(ours.len(), 2);
        assert_eq!(ours[0].kind, JournalKind::LockWait);
        assert_eq!(ours[1].kind, JournalKind::Deadlock);
        assert!(ours[0].seq < ours[1].seq);
        assert!(ours[0].micros <= ours[1].micros);
        let dump = dump_string();
        assert!(dump.contains("deadlock"), "dump names the event kind: {dump}");
        assert!(dump.contains("txn7 -> txn9"), "dump carries the detail: {dump}");
        drain();
    }

    #[test]
    fn ring_counts_drops_exactly() {
        let ring = JournalRing::new(3);
        for i in 0..5 {
            ring.push(JournalEvent {
                seq: 0,
                micros: i,
                trace_id: 0,
                txn: i as i64,
                kind: JournalKind::Info,
                detail: String::new(),
            });
        }
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 2, "two events were overwritten before any drain");
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3, "snapshot is non-destructive");
        assert_eq!(ring.snapshot().len(), 3);
        let drained = ring.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(ring.drained(), 3);
        assert!(ring.snapshot().is_empty());
    }
}
